// Fleet layer: device registry (KDF, provisioning), verifier hub
// (challenge tables, expiry, anti-replay, typed errors) and the
// multi-device end-to-end protocol over wire v2.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "common/error.h"
#include "fleet/stats_render.h"
#include "fleet/verifier_hub.h"
#include "helpers.h"
#include "proto/wire.h"

namespace dialed::fleet {
namespace {

using test::build_op;

constexpr const char* adder = "int op(int a, int b) { return a + b; }";

byte_vec master_key() { return byte_vec(32, 0x42); }

instr::linked_program adder_prog() {
  return build_op(adder, "op", instr::instrumentation::dialed);
}

proto::invocation args(std::uint16_t a0, std::uint16_t a1 = 0) {
  proto::invocation inv;
  inv.args[0] = a0;
  inv.args[1] = a1;
  return inv;
}

byte_vec frame_for(device_id id, const challenge_grant& grant,
                   const verifier::attestation_report& rep) {
  proto::frame_info info;
  info.device_id = id;
  info.seq = grant.seq;
  return proto::encode_frame(info, rep);
}

// ---------------------------------------------------------------------------
// Registry / KDF
// ---------------------------------------------------------------------------

TEST(registry, kdf_is_deterministic_and_id_dependent) {
  device_registry a(master_key());
  device_registry b(master_key());
  EXPECT_EQ(a.derive_key(7), b.derive_key(7));
  EXPECT_NE(a.derive_key(7), a.derive_key(8));
  EXPECT_EQ(a.derive_key(7).size(), 32u);
  device_registry other(byte_vec(32, 0x43));
  EXPECT_NE(a.derive_key(7), other.derive_key(7));
}

TEST(registry, provision_assigns_stable_ids_and_derived_keys) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id1 = reg.provision(prog);
  const auto id2 = reg.provision(prog);
  EXPECT_NE(id1, id2);
  ASSERT_NE(reg.find(id1), nullptr);
  EXPECT_EQ(reg.find(id1)->key, reg.derive_key(id1));
  EXPECT_EQ(reg.find(id2)->key, reg.derive_key(id2));
  EXPECT_EQ(reg.find(9999), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(registry, explicit_ids_rejected_when_taken_or_zero) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  EXPECT_EQ(reg.provision(17, prog), 17u);
  EXPECT_THROW(reg.provision(17, prog), error);
  EXPECT_THROW(reg.provision(0, prog), error);
  // Auto-assignment walks past explicitly taken ids.
  device_registry reg2(master_key());
  reg2.provision(1, prog);
  reg2.provision(2, prog);
  const auto id = reg2.provision(prog);
  EXPECT_EQ(reg2.find(id)->id, id);
  EXPECT_NE(id, 1u);
  EXPECT_NE(id, 2u);
}

TEST(registry, misuse_raises_typed_errors) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  reg.provision(9, prog);

  // Duplicate re-provisioning never silently overwrites the record.
  const auto* before = reg.find(9);
  try {
    reg.provision(9, build_op("int op(int x) { return x; }", "op",
                              instr::instrumentation::dialed));
    FAIL() << "duplicate id accepted";
  } catch (const registry_error& e) {
    EXPECT_EQ(e.kind(), registry_error_kind::duplicate_id);
  }
  EXPECT_EQ(reg.find(9), before);
  EXPECT_EQ(reg.size(), 1u);
  // The rejected program must not pollute the catalog either.
  EXPECT_EQ(reg.catalog()->size(), 1u);

  try {
    reg.provision(0, prog);
    FAIL() << "reserved id accepted";
  } catch (const registry_error& e) {
    EXPECT_EQ(e.kind(), registry_error_kind::reserved_id);
  }

  // Empty keys are rejected instead of silently enrolling an
  // unattestable device.
  try {
    reg.enroll(prog, byte_vec{});
    FAIL() << "empty device key accepted";
  } catch (const registry_error& e) {
    EXPECT_EQ(e.kind(), registry_error_kind::empty_key);
  }
  EXPECT_EQ(reg.size(), 1u);

  try {
    device_registry bad(byte_vec{});
    FAIL() << "empty master key accepted";
  } catch (const registry_error& e) {
    EXPECT_EQ(e.kind(), registry_error_kind::empty_master_key);
  }
}

// ---------------------------------------------------------------------------
// Hub: challenge lifecycle
// ---------------------------------------------------------------------------

TEST(hub, unknown_device_is_a_typed_error) {
  device_registry reg(master_key());
  verifier_hub hub(reg);
  EXPECT_EQ(hub.challenge(5).error, proto_error::unknown_device);
  verifier::attestation_report rep;
  EXPECT_EQ(hub.verify_report(5, rep).error, proto_error::unknown_device);
}

TEST(hub, accepts_fresh_report_and_rejects_replay) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  verifier_hub hub(reg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto grant = hub.challenge(id);
  ASSERT_TRUE(grant.ok());
  const auto rep = dev.invoke(grant.nonce, args(20, 22));
  const auto r = hub.verify_report(id, grant.seq, rep);
  EXPECT_EQ(r.error, proto_error::none);
  EXPECT_TRUE(r.accepted());
  EXPECT_EQ(r.verdict.replayed_result, 42);
  // The nonce is consumed: an identical report is a typed replay error.
  const auto replay = hub.verify_report(id, grant.seq, rep);
  EXPECT_EQ(replay.error, proto_error::replayed_report);
  EXPECT_FALSE(replay.accepted());
}

TEST(hub, many_outstanding_challenges_complete_out_of_order) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  verifier_hub hub(reg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g1 = hub.challenge(id);
  const auto g2 = hub.challenge(id);
  const auto g3 = hub.challenge(id);
  EXPECT_EQ(hub.outstanding(id), 3u);
  EXPECT_LT(g1.seq, g2.seq);
  EXPECT_LT(g2.seq, g3.seq);

  // Answer newest first: per-challenge consumption, not strict ordering.
  const auto r3 = hub.verify_report(id, g3.seq, dev.invoke(g3.nonce, args(3)));
  const auto r1 = hub.verify_report(id, g1.seq, dev.invoke(g1.nonce, args(1)));
  const auto r2 = hub.verify_report(id, g2.seq, dev.invoke(g2.nonce, args(2)));
  EXPECT_TRUE(r1.accepted());
  EXPECT_TRUE(r2.accepted());
  EXPECT_TRUE(r3.accepted());
  EXPECT_EQ(r1.verdict.replayed_result, 1);
  EXPECT_EQ(r2.verdict.replayed_result, 2);
  EXPECT_EQ(r3.verdict.replayed_result, 3);
  EXPECT_EQ(hub.outstanding(id), 0u);
}

TEST(hub, capacity_eviction_is_explicit_challenge_superseded) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  hub_config cfg;
  cfg.max_outstanding = 2;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g1 = hub.challenge(id);
  const auto g2 = hub.challenge(id);
  EXPECT_EQ(g1.note, proto_error::none);
  EXPECT_EQ(g2.note, proto_error::none);
  const auto rep1 = dev.invoke(g1.nonce, args(1));  // answer g1... too late:
  const auto g3 = hub.challenge(id);                // g3 evicts g1
  EXPECT_EQ(g3.note, proto_error::challenge_superseded);
  const auto r1 = hub.verify_report(id, g1.seq, rep1);
  EXPECT_EQ(r1.error, proto_error::challenge_superseded);
  // g2 and g3 still verify.
  EXPECT_TRUE(hub.verify_report(id, g2.seq, dev.invoke(g2.nonce, args(2)))
                  .accepted());
  EXPECT_TRUE(hub.verify_report(id, g3.seq, dev.invoke(g3.nonce, args(3)))
                  .accepted());
}

TEST(hub, challenges_expire_on_the_tick_clock) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  hub_config cfg;
  cfg.challenge_ttl = 10;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g1 = hub.challenge(id);
  const auto rep1 = dev.invoke(g1.nonce, args(1));
  hub.tick(5);
  const auto g2 = hub.challenge(id);  // younger: survives the cutoff
  hub.tick(6);                        // g1 is now 11 ticks old, g2 only 6
  const auto r1 = hub.verify_report(id, g1.seq, rep1);
  EXPECT_EQ(r1.error, proto_error::challenge_expired);
  const auto r2 = hub.verify_report(id, g2.seq, dev.invoke(g2.nonce, args(2)));
  EXPECT_TRUE(r2.accepted());
}

TEST(hub, sequence_mismatch_is_detected) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  verifier_hub hub(reg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g1 = hub.challenge(id);
  const auto g2 = hub.challenge(id);
  // A frame carrying g1's nonce but claiming g2's seq is inconsistent.
  const auto rep = dev.invoke(g1.nonce, args(1));
  EXPECT_EQ(hub.verify_report(id, g2.seq, rep).error,
            proto_error::sequence_mismatch);
  // A wire seq of 0 is NOT a skip token: it must mismatch too.
  EXPECT_EQ(hub.verify_report(id, 0, rep).error,
            proto_error::sequence_mismatch);
  // Only the explicit sequence-unchecked overload (v1 adapters) skips.
  EXPECT_TRUE(hub.verify_report(id, rep).accepted());
}

TEST(hub, never_issued_nonce_is_stale) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  verifier_hub hub(reg);
  proto::prover_device dev(prog, reg.derive_key(id));
  std::array<std::uint8_t, 16> bogus{};
  bogus.fill(0xee);
  const auto rep = dev.invoke(bogus, args(1));
  EXPECT_EQ(hub.verify_report(id, rep).error, proto_error::stale_nonce);
}

// ---------------------------------------------------------------------------
// Cross-device isolation
// ---------------------------------------------------------------------------

TEST(hub, report_mac_from_device_a_rejected_for_device_b) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id_a = reg.provision(prog);
  const auto id_b = reg.provision(prog);
  ASSERT_NE(reg.derive_key(id_a), reg.derive_key(id_b));
  verifier_hub hub(reg);
  proto::prover_device dev_a(prog, reg.derive_key(id_a));

  // Device A answers a challenge issued to B (same program, wrong key):
  // the MAC cannot verify under K_dev(B).
  const auto grant_b = hub.challenge(id_b);
  const auto rep = dev_a.invoke(grant_b.nonce, args(20, 22));
  const auto r = hub.verify_report(id_b, grant_b.seq, rep);
  EXPECT_EQ(r.error, proto_error::none);  // protocol-level fine...
  EXPECT_FALSE(r.accepted());             // ...but cryptographically rejected
  EXPECT_TRUE(r.verdict.has(verifier::attack_kind::mac_invalid));
}

TEST(hub, frame_rerouted_to_another_device_rejected) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id_a = reg.provision(prog);
  const auto id_b = reg.provision(prog);
  verifier_hub hub(reg);
  proto::prover_device dev_a(prog, reg.derive_key(id_a));

  const auto grant_a = hub.challenge(id_a);
  const auto rep = dev_a.invoke(grant_a.nonce, args(20, 22));
  // An attacker rewrites the frame header to claim device B's identity.
  proto::frame_info forged;
  forged.device_id = id_b;
  forged.seq = grant_a.seq;
  const auto r = hub.submit(proto::encode_frame(forged, rep));
  // B never saw this nonce — typed protocol error, no MAC work done.
  EXPECT_EQ(r.error, proto_error::stale_nonce);
}

// ---------------------------------------------------------------------------
// End-to-end: a three-device fleet over wire v2
// ---------------------------------------------------------------------------

TEST(hub, three_device_fleet_end_to_end) {
  device_registry reg(master_key());
  const auto prog_add = adder_prog();
  const auto prog_mul =
      build_op("int op(int a, int b) { return a * b; }", "op",
               instr::instrumentation::dialed);
  const auto id1 = reg.provision(prog_add);
  const auto id2 = reg.provision(prog_mul);
  const auto id3 = reg.provision(prog_add);
  verifier_hub hub(reg);

  proto::prover_device dev1(prog_add, reg.derive_key(id1));
  proto::prover_device dev2(prog_mul, reg.derive_key(id2));
  proto::prover_device dev3(prog_add, reg.derive_key(id3));

  // All three challenges outstanding concurrently before any report.
  const auto g1 = hub.challenge(id1);
  const auto g2 = hub.challenge(id2);
  const auto g3 = hub.challenge(id3);
  ASSERT_TRUE(g1.ok() && g2.ok() && g3.ok());

  const auto f1 = frame_for(id1, g1, dev1.invoke(g1.nonce, args(6, 7)));
  const auto f2 = frame_for(id2, g2, dev2.invoke(g2.nonce, args(6, 7)));
  const auto f3 = frame_for(id3, g3, dev3.invoke(g3.nonce, args(40, 2)));

  // Submit out of order, as fleet traffic arrives.
  const auto r2 = hub.submit(f2);
  const auto r1 = hub.submit(f1);
  const auto r3 = hub.submit(f3);
  EXPECT_TRUE(r1.accepted());
  EXPECT_TRUE(r2.accepted());
  EXPECT_TRUE(r3.accepted());
  EXPECT_EQ(r1.verdict.replayed_result, 13);
  EXPECT_EQ(r2.verdict.replayed_result, 42);
  EXPECT_EQ(r3.verdict.replayed_result, 42);
  EXPECT_EQ(r1.device, id1);
  EXPECT_EQ(r2.device, id2);

  // A frame replayed across challenges is rejected with a typed error.
  EXPECT_EQ(hub.submit(f2).error, proto_error::replayed_report);
}

TEST(hub, batch_verification_matches_individual_submits) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id1 = reg.provision(prog);
  const auto id2 = reg.provision(prog);
  verifier_hub hub(reg);
  proto::prover_device dev1(prog, reg.derive_key(id1));
  proto::prover_device dev2(prog, reg.derive_key(id2));

  std::vector<byte_vec> frames;
  std::vector<std::uint16_t> expect;
  for (int round = 0; round < 3; ++round) {
    const auto g1 = hub.challenge(id1);
    const auto g2 = hub.challenge(id2);
    const auto a = static_cast<std::uint16_t>(10 * (round + 1));
    frames.push_back(frame_for(id1, g1, dev1.invoke(g1.nonce, args(a, 1))));
    frames.push_back(frame_for(id2, g2, dev2.invoke(g2.nonce, args(a, 2))));
    expect.push_back(static_cast<std::uint16_t>(a + 1));
    expect.push_back(static_cast<std::uint16_t>(a + 2));
  }
  // One corrupted frame in the middle must not poison the batch.
  frames.insert(frames.begin() + 3, byte_vec(20, 0));
  expect.insert(expect.begin() + 3, 0);

  const auto results = hub.verify_batch(frames);
  ASSERT_EQ(results.size(), frames.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(results[i].error, proto_error::bad_magic);
      continue;
    }
    EXPECT_TRUE(results[i].accepted()) << "frame " << i;
    EXPECT_EQ(results[i].verdict.replayed_result, expect[i]);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: the sharded hub under multi-threaded traffic
// ---------------------------------------------------------------------------

// A cheap, wire-valid frame for hammering the hub's locking: the challenge
// nonce/device/seq are real, the rest of the report is default garbage, so
// the nonce bookkeeping (the part under the shard locks) runs in full but
// verification exits early with bounds_mismatch — error == none either way.
byte_vec dummy_frame(device_id id, const challenge_grant& grant) {
  verifier::attestation_report rep;
  rep.challenge = grant.nonce;
  proto::frame_info info;
  info.device_id = id;
  info.seq = grant.seq;
  return proto::encode_frame(info, rep);
}

TEST(hub_concurrency, hammered_challenge_submit_never_loses_or_dupes_nonces) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  std::vector<device_id> ids;
  for (int d = 0; d < 6; ++d) ids.push_back(reg.provision(prog));

  constexpr int threads = 8;
  constexpr int iterations = 40;
  hub_config cfg;
  cfg.max_outstanding = threads * 2;  // headroom: no supersede noise
  // The duplicate-submit check below needs the consumed nonce still in the
  // retired history; between a thread's two submits the OTHER 7 threads
  // can retire up to 7 * iterations entries on the same device, so the
  // window must exceed threads * iterations to be schedule-proof.
  cfg.retired_memory = threads * iterations * 2;
  cfg.workers = 2;
  verifier_hub hub(reg, cfg);

  // Every thread hits EVERY device each iteration — maximal overlap on the
  // shard locks and the per-device tables.
  std::atomic<int> failures{0};
  std::vector<std::vector<std::array<std::uint8_t, 16>>> nonces(threads);
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < iterations; ++i) {
        for (const auto id : ids) {
          const auto grant = hub.challenge(id);
          if (!grant.ok() || grant.note != proto_error::none) {
            ++failures;
            continue;
          }
          nonces[t].push_back(grant.nonce);
          const auto frame = dummy_frame(id, grant);
          // Exactly one submit consumes the nonce...
          const auto first = hub.submit(frame);
          if (first.error != proto_error::none ||
              first.device != id || first.seq != grant.seq) {
            ++failures;
          }
          // ...and the duplicate is a typed replay, never a second verify.
          const auto second = hub.submit(frame);
          if (second.error != proto_error::replayed_report) ++failures;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Every issued nonce was consumed: nothing left outstanding anywhere.
  for (const auto id : ids) EXPECT_EQ(hub.outstanding(id), 0u);

  // No generator collisions across shard RNG streams or threads.
  std::set<std::array<std::uint8_t, 16>> unique;
  std::size_t total = 0;
  for (const auto& per_thread : nonces) {
    total += per_thread.size();
    unique.insert(per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(unique.size(), total);
  EXPECT_EQ(total,
            static_cast<std::size_t>(threads) * iterations * ids.size());
}

TEST(hub, delta_fallback_negotiation_keeps_the_nonce_alive) {
  // Wire v2.1 negotiation: a delta frame naming a baseline the hub does
  // not hold is the typed baseline_mismatch, the challenge SURVIVES, and
  // the full-frame resend for the same nonce verifies. The delta_emitter
  // drives exactly this loop.
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  hub_config cfg;
  cfg.sequential_batch = true;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));
  proto::delta_emitter emitter;

  // A desynced emitter: it believes in a baseline the hub never adopted.
  const auto g1 = hub.challenge(id);
  const auto rep1 = dev.invoke(g1.nonce, args(20, 22));
  emitter.note_result(id, 999, rep1, proto_error::none, true);
  ASSERT_TRUE(emitter.has_baseline(id));

  const auto delta_frame = emitter.encode(id, g1.seq, rep1);
  const auto r1 = hub.submit(delta_frame);
  EXPECT_EQ(r1.error, proto_error::baseline_mismatch);
  EXPECT_EQ(hub.outstanding(id), 1u);  // NOT burned
  emitter.note_result(id, g1.seq, rep1, r1.error, false);
  EXPECT_FALSE(emitter.has_baseline(id));  // mirror dropped

  // The re-encode of the SAME report now goes out full and verifies
  // against the SAME challenge.
  const auto full_frame = emitter.encode(id, g1.seq, rep1);
  const auto r2 = hub.submit(full_frame);
  ASSERT_TRUE(r2.accepted());
  emitter.note_result(id, g1.seq, rep1, r2.error, true);

  // Lockstep from here: round 2 rides a delta frame and verifies.
  const auto g2 = hub.challenge(id);
  const auto rep2 = dev.invoke(g2.nonce, args(7, 8));
  const auto frame2 = emitter.encode(id, g2.seq, rep2);
  EXPECT_LT(frame2.size(), full_frame.size());
  const auto r3 = hub.submit(frame2);
  ASSERT_TRUE(r3.accepted());
  EXPECT_EQ(r3.verdict.replayed_result, 15);

  // The histogram sees the mismatch, attributed to the device.
  const auto stats = hub.stats();
  EXPECT_EQ(stats.rejected_by_error[static_cast<std::size_t>(
                proto_error::baseline_mismatch)],
            1u);
  EXPECT_EQ(stats.per_device.at(id).rejected_protocol, 1u);
}

TEST(hub, adopted_baseline_survives_frame_buffer_reuse) {
  // The zero-copy decode hands verify a view INTO the submitted frame.
  // The baseline adopted from an accepted round must be a COPY of those
  // bytes — if adoption ever stored the span, reusing (or clobbering)
  // the frame buffer would tear every later delta reconstruction.
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  hub_config cfg;
  cfg.sequential_batch = true;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g1 = hub.challenge(id);
  const auto rep1 = dev.invoke(g1.nonce, args(20, 22));
  auto frame1 = frame_for(id, g1, rep1);
  ASSERT_TRUE(hub.submit(frame1).accepted());

  // Clobber the buffer the hub borrowed during that submit, the way a
  // network receive loop reuses its read buffer for the next frame.
  std::fill(frame1.begin(), frame1.end(), std::uint8_t{0xcc});

  // A delta against the adopted baseline still reconstructs and
  // verifies: the hub kept its own bytes, not the dead view.
  const auto g2 = hub.challenge(id);
  const auto rep2 = dev.invoke(g2.nonce, args(6, 7));
  proto::frame_info info;
  info.device_id = id;
  info.seq = g2.seq;
  const auto r =
      hub.submit(proto::encode_delta_frame(info, rep2, g1.seq,
                                           rep1.or_bytes));
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(r.verdict.replayed_result, 13);
}

TEST(hub, baselines_can_be_disabled_per_hub) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  hub_config cfg;
  cfg.sequential_batch = true;
  cfg.or_baselines = false;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g1 = hub.challenge(id);
  const auto rep1 = dev.invoke(g1.nonce, args(1, 2));
  ASSERT_TRUE(hub.submit(frame_for(id, g1, rep1)).accepted());
  // No baseline was adopted: a byte-perfect delta is still rejected.
  const auto g2 = hub.challenge(id);
  const auto rep2 = dev.invoke(g2.nonce, args(3, 4));
  proto::frame_info info;
  info.device_id = id;
  info.seq = g2.seq;
  const auto r = hub.submit(
      proto::encode_delta_frame(info, rep2, g1.seq, rep1.or_bytes));
  EXPECT_EQ(r.error, proto_error::baseline_mismatch);
  // And none is ever persisted through a dump.
  for (const auto& d : hub.dump_devices()) {
    EXPECT_FALSE(d.baseline.valid);
  }
}

TEST(hub_concurrency, delta_submit_hammer_keeps_baselines_untorn) {
  // 8 threads × delta/full/tampered submissions on ONE device (maximal
  // shard-lock contention on the baseline). Run under TSan in CI. After
  // the dust settles: the baseline must be EXACTLY the OR of the
  // newest-seq ACCEPTED round — tampered rounds never steer it, and a
  // torn write (interleaved bytes of two rounds) would match no round.
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);

  constexpr int threads = 8;
  constexpr int rounds_per_thread = 8;
  constexpr int total_rounds = threads * rounds_per_thread;
  hub_config cfg;
  cfg.max_outstanding = total_rounds;
  cfg.retired_memory = total_rounds * 2;
  cfg.workers = 2;
  verifier_hub hub(reg, cfg);

  // Pre-phase (single-threaded: the prover device is not): one grant and
  // one genuine report per round, args varied so every round's OR is
  // distinct — a torn baseline cannot masquerade as a valid one.
  struct round_data {
    challenge_grant grant;
    verifier::attestation_report rep;
    byte_vec full;
    byte_vec delta_vs_round0;  ///< valid only while round 0 is baseline
    byte_vec tampered;
  };
  proto::prover_device dev(prog, reg.derive_key(id));
  std::vector<round_data> rounds(total_rounds);
  for (int r = 0; r < total_rounds; ++r) {
    auto& rd = rounds[r];
    rd.grant = hub.challenge(id);
    rd.rep = dev.invoke(rd.grant.nonce,
                        args(static_cast<std::uint16_t>(r),
                             static_cast<std::uint16_t>(r * 3 + 1)));
    proto::frame_info info;
    info.device_id = id;
    info.seq = rd.grant.seq;
    rd.full = proto::encode_frame(info, rd.rep);
    auto forged = rd.rep;
    forged.claimed_result ^= 0xbeef;
    rd.tampered = proto::encode_frame(info, forged);
    if (r > 0) {
      rd.delta_vs_round0 = proto::encode_delta_frame(
          info, rd.rep, rounds[0].grant.seq, rounds[0].rep.or_bytes);
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::vector<std::uint32_t>> accepted_seqs(threads);
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < rounds_per_thread; ++i) {
        const int r = t * rounds_per_thread + i;
        const auto& rd = rounds[r];
        if (r % 5 == 4) {
          // Tampered round: reaches the verdict, must NOT be accepted
          // (and must never move the baseline — checked below).
          const auto res = hub.submit(rd.tampered);
          if (res.error != proto_error::none || res.verdict.accepted) {
            ++failures;
          }
        } else if (r % 2 == 1) {
          // Delta against round 0: races the baseline table. Accepted
          // only while round 0 IS the baseline; otherwise the typed
          // mismatch keeps the nonce alive for the full-frame fallback.
          const auto res = hub.submit(rd.delta_vs_round0);
          if (res.accepted()) {
            accepted_seqs[t].push_back(res.seq);
          } else if (res.error == proto_error::baseline_mismatch) {
            const auto full = hub.submit(rd.full);
            if (!full.accepted()) {
              ++failures;
            } else {
              accepted_seqs[t].push_back(full.seq);
            }
          } else {
            ++failures;
          }
        } else {
          const auto res = hub.submit(rd.full);
          if (!res.accepted()) {
            ++failures;
          } else {
            accepted_seqs[t].push_back(res.seq);
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  ASSERT_EQ(failures.load(), 0);

  // Accepted-verdict-only + newest-wins: the surviving baseline is the
  // max accepted seq's OR, byte for byte.
  std::uint32_t max_seq = 0;
  std::size_t n_accepted = 0;
  for (const auto& per_thread : accepted_seqs) {
    n_accepted += per_thread.size();
    for (const auto s : per_thread) max_seq = std::max(max_seq, s);
  }
  ASSERT_GT(n_accepted, 0u);
  const auto dump = hub.dump_devices();
  ASSERT_EQ(dump.size(), 1u);
  const auto& baseline = dump[0].baseline;
  ASSERT_TRUE(baseline.valid);
  EXPECT_EQ(baseline.seq, max_seq);
  const auto by_seq = std::find_if(
      rounds.begin(), rounds.end(), [&](const round_data& rd) {
        return rd.grant.seq == max_seq;
      });
  ASSERT_NE(by_seq, rounds.end());
  EXPECT_EQ(baseline.bytes, by_seq->rep.or_bytes)
      << "baseline bytes match no accepted round: torn write";
  // Tampered rounds (seq % ... the r % 5 == 4 rounds) were never adopted.
  for (int r = 4; r < total_rounds; r += 5) {
    EXPECT_NE(baseline.seq, rounds[r].grant.seq);
  }

  // The post-hammer fleet still polls in lockstep: one more delta round
  // against the final baseline.
  const auto g = hub.challenge(id);
  const auto rep = dev.invoke(g.nonce, args(500, 1));
  proto::frame_info info;
  info.device_id = id;
  info.seq = g.seq;
  const auto r = hub.submit(proto::encode_delta_frame(
      info, rep, baseline.seq, baseline.bytes));
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(r.verdict.replayed_result, 501);
}

TEST(hub_concurrency, parallel_batch_results_are_order_stable) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  std::vector<device_id> ids;
  for (int d = 0; d < 4; ++d) ids.push_back(reg.provision(prog));

  hub_config cfg;
  cfg.max_outstanding = 64;
  cfg.workers = 4;
  verifier_hub hub(reg, cfg);

  // 4 devices x 32 rounds, interleaved round-robin so adjacent batch
  // entries hit different shards.
  std::vector<byte_vec> frames;
  std::vector<std::pair<device_id, std::uint32_t>> expect;
  for (int round = 0; round < 32; ++round) {
    for (const auto id : ids) {
      const auto grant = hub.challenge(id);
      ASSERT_TRUE(grant.ok());
      frames.push_back(dummy_frame(id, grant));
      expect.emplace_back(id, grant.seq);
    }
  }

  const auto results = hub.verify_batch(frames);
  ASSERT_EQ(results.size(), frames.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].error, proto_error::none) << "slot " << i;
    EXPECT_EQ(results[i].device, expect[i].first) << "slot " << i;
    EXPECT_EQ(results[i].seq, expect[i].second) << "slot " << i;
  }
  // Re-submitting the whole batch: every slot is a replay, still in order.
  const auto replays = hub.verify_batch(frames);
  for (std::size_t i = 0; i < replays.size(); ++i) {
    EXPECT_EQ(replays[i].error, proto_error::replayed_report);
    EXPECT_EQ(replays[i].device, expect[i].first);
  }
}

TEST(hub_concurrency, parallel_batch_verdicts_match_sequential_hub) {
  // Real (cryptographically valid) reports through both a sequential and a
  // parallel hub armed with the same seed: byte-identical accept verdicts,
  // input order preserved.
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id1 = reg.provision(prog);
  const auto id2 = reg.provision(prog);
  hub_config seq_cfg;
  seq_cfg.sequential_batch = true;
  hub_config par_cfg;
  par_cfg.workers = 4;
  verifier_hub seq_hub(reg, seq_cfg);
  verifier_hub par_hub(reg, par_cfg);
  proto::prover_device dev1(prog, reg.derive_key(id1));
  proto::prover_device dev2(prog, reg.derive_key(id2));

  // Same seed + same issue order => identical grants from both hubs.
  std::vector<byte_vec> frames;
  std::vector<std::uint16_t> expect;
  for (int round = 0; round < 3; ++round) {
    const auto g1 = seq_hub.challenge(id1);
    const auto g2 = seq_hub.challenge(id2);
    ASSERT_EQ(par_hub.challenge(id1).nonce, g1.nonce);
    ASSERT_EQ(par_hub.challenge(id2).nonce, g2.nonce);
    const auto a = static_cast<std::uint16_t>(10 * (round + 1));
    frames.push_back(frame_for(id1, g1, dev1.invoke(g1.nonce, args(a, 1))));
    frames.push_back(frame_for(id2, g2, dev2.invoke(g2.nonce, args(a, 2))));
    expect.push_back(static_cast<std::uint16_t>(a + 1));
    expect.push_back(static_cast<std::uint16_t>(a + 2));
  }
  const auto seq_results = seq_hub.verify_batch(frames);
  const auto par_results = par_hub.verify_batch(frames);
  ASSERT_EQ(seq_results.size(), par_results.size());
  for (std::size_t i = 0; i < seq_results.size(); ++i) {
    EXPECT_TRUE(seq_results[i].accepted()) << "slot " << i;
    EXPECT_TRUE(par_results[i].accepted()) << "slot " << i;
    EXPECT_EQ(par_results[i].verdict.replayed_result, expect[i]);
    EXPECT_EQ(seq_results[i].verdict.replayed_result, expect[i]);
  }
}

TEST(hub_concurrency, outstanding_count_is_expiry_aware) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  hub_config cfg;
  cfg.challenge_ttl = 10;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g1 = hub.challenge(id);
  const auto rep1 = dev.invoke(g1.nonce, args(1));
  hub.tick(5);
  const auto g2 = hub.challenge(id);
  EXPECT_EQ(hub.outstanding(id), 2u);
  // g1 dies at age 11. No challenge/verify runs on this device in
  // between, so only the lazily-swept table holds it — the count must
  // still exclude it.
  hub.tick(6);
  EXPECT_EQ(hub.outstanding(id), 1u);
  hub.tick(5);  // now g2 (age 11) is dead too
  EXPECT_EQ(hub.outstanding(id), 0u);
  // The late report still gets its precise typed error.
  EXPECT_EQ(hub.verify_report(id, g1.seq, rep1).error,
            proto_error::challenge_expired);
}

TEST(hub_concurrency, many_devices_one_firmware_verify_in_parallel) {
  // The fleet's dominant shape under the firmware catalog: every device
  // shares ONE immutable artifact, verified concurrently by the batch
  // pool (TSan checks the shared-artifact reads + per-thread machines).
  device_registry reg(master_key());
  const auto prog = adder_prog();
  std::vector<device_id> ids;
  for (int d = 0; d < 12; ++d) ids.push_back(reg.provision(prog));
  EXPECT_EQ(reg.catalog()->size(), 1u);
  const auto* shared_fw = reg.find(ids[0])->firmware.get();
  for (const auto id : ids) {
    ASSERT_EQ(reg.find(id)->firmware.get(), shared_fw);
  }

  hub_config cfg;
  cfg.max_outstanding = 8;
  cfg.workers = 4;
  verifier_hub hub(reg, cfg);

  // Real (cryptographically valid) frames: the parallel workers all run
  // full MAC + replay against the one shared artifact.
  std::vector<byte_vec> frames;
  std::vector<std::uint16_t> expect;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t d = 0; d < ids.size(); ++d) {
      const auto grant = hub.challenge(ids[d]);
      ASSERT_TRUE(grant.ok());
      proto::prover_device dev(prog, reg.derive_key(ids[d]));
      const auto a = static_cast<std::uint16_t>(100 * round + d);
      frames.push_back(
          frame_for(ids[d], grant, dev.invoke(grant.nonce, args(a, 1))));
      expect.push_back(static_cast<std::uint16_t>(a + 1));
    }
  }

  const auto results = hub.verify_batch(frames);
  ASSERT_EQ(results.size(), frames.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].accepted()) << "frame " << i;
    EXPECT_EQ(results[i].verdict.replayed_result, expect[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Hub metrics
// ---------------------------------------------------------------------------

TEST(hub, stats_count_accepts_rejects_and_challenge_lifecycle) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  hub_config cfg;
  cfg.challenge_ttl = 10;
  cfg.max_outstanding = 2;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));

  EXPECT_EQ(hub.stats().reports_submitted(), 0u);

  // Accept one report, replay it (typed rejection), feed garbage
  // (transport rejection), and verify a forged result (verdict
  // rejection).
  const auto g1 = hub.challenge(id);
  const auto rep1 = dev.invoke(g1.nonce, args(20, 22));
  EXPECT_TRUE(hub.verify_report(id, g1.seq, rep1).accepted());
  EXPECT_EQ(hub.verify_report(id, g1.seq, rep1).error,
            proto_error::replayed_report);
  EXPECT_EQ(hub.submit(byte_vec(16, 0)).error, proto_error::bad_magic);

  const auto g2 = hub.challenge(id);
  auto forged = dev.invoke(g2.nonce, args(1, 2));
  forged.claimed_result = 0x1234;
  const auto r = hub.verify_report(id, g2.seq, forged);
  EXPECT_EQ(r.error, proto_error::none);
  EXPECT_FALSE(r.accepted());

  // Expire a challenge on the tick clock; the sweep happens lazily on the
  // next challenge for that device.
  hub.challenge(id);
  hub.tick(11);
  const auto g4 = hub.challenge(id);
  ASSERT_TRUE(g4.ok());

  // Fill the table (max_outstanding = 2) and overflow it: the eviction
  // must show up as a superseded challenge.
  hub.challenge(id);
  const auto g6 = hub.challenge(id);
  EXPECT_EQ(g6.note, proto_error::challenge_superseded);

  const auto s = hub.stats();
  EXPECT_EQ(s.challenges_issued, 6u);
  EXPECT_EQ(s.challenges_expired, 1u);
  EXPECT_EQ(s.challenges_superseded, 1u);
  EXPECT_EQ(s.reports_accepted, 1u);
  EXPECT_EQ(s.reports_rejected_verdict, 1u);
  EXPECT_EQ(s.rejected_by_error[static_cast<std::size_t>(
                proto_error::replayed_report)],
            1u);
  EXPECT_EQ(
      s.rejected_by_error[static_cast<std::size_t>(proto_error::bad_magic)],
      1u);
  EXPECT_EQ(s.reports_rejected_protocol(), 2u);
  EXPECT_EQ(s.reports_submitted(), 4u);
  EXPECT_EQ(s.rejected_by_error[0], 0u);  // proto_error::none never counts
}

TEST(hub, stats_break_down_per_device) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id_a = reg.provision(prog);
  const auto id_b = reg.provision(prog);
  verifier_hub hub(reg, {});
  proto::prover_device dev_a(prog, reg.derive_key(id_a));
  proto::prover_device dev_b(prog, reg.derive_key(id_b));

  // Device A: two accepts, then a replay of the second report.
  for (int i = 0; i < 2; ++i) {
    const auto g = hub.challenge(id_a);
    EXPECT_TRUE(
        hub.verify_report(id_a, g.seq, dev_a.invoke(g.nonce, args(1, 2)))
            .accepted());
  }
  const auto ga = hub.challenge(id_a);
  const auto rep_a = dev_a.invoke(ga.nonce, args(3, 4));
  EXPECT_TRUE(hub.verify_report(id_a, ga.seq, rep_a).accepted());
  EXPECT_EQ(hub.verify_report(id_a, ga.seq, rep_a).error,
            proto_error::replayed_report);

  // Device B: one verdict rejection (forged result) and one protocol
  // rejection (sequence mismatch).
  const auto gb = hub.challenge(id_b);
  auto forged = dev_b.invoke(gb.nonce, args(1, 2));
  forged.claimed_result = 0x1234;
  EXPECT_FALSE(hub.verify_report(id_b, gb.seq, forged).accepted());
  const auto gb2 = hub.challenge(id_b);
  EXPECT_EQ(hub.verify_report(id_b, gb2.seq + 7,
                              dev_b.invoke(gb2.nonce, args(1, 2)))
                .error,
            proto_error::sequence_mismatch);

  // A submission for an unprovisioned id must NOT grow the map.
  verifier::attestation_report bogus;
  EXPECT_EQ(hub.verify_report(9999, 1, bogus).error,
            proto_error::unknown_device);

  const auto s = hub.stats();
  ASSERT_EQ(s.per_device.size(), 2u);
  EXPECT_EQ(s.per_device.at(id_a).accepted, 3u);
  EXPECT_EQ(s.per_device.at(id_a).replayed, 1u);
  EXPECT_EQ(s.per_device.at(id_a).rejected_verdict, 0u);
  EXPECT_EQ(s.per_device.at(id_a).rejected_protocol, 0u);
  EXPECT_EQ(s.per_device.at(id_b).accepted, 0u);
  EXPECT_EQ(s.per_device.at(id_b).rejected_verdict, 1u);
  EXPECT_EQ(s.per_device.at(id_b).rejected_protocol, 1u);
  EXPECT_EQ(s.per_device.at(id_b).total(), 2u);
  EXPECT_EQ(s.per_device.count(9999), 0u);
  // The per-device rows sum to the hub-level totals they break down.
  EXPECT_EQ(s.per_device.at(id_a).total() + s.per_device.at(id_b).total(),
            s.reports_submitted() - 1);  // minus the unknown-device one
}

// ---------------------------------------------------------------------------
// Adapter (v1 session) over the hub
// ---------------------------------------------------------------------------

TEST(adapter, session_reports_superseded_via_hub_but_stale_via_v1_api) {
  const auto prog = adder_prog();
  proto::prover_device dev(prog, test::test_key());
  proto::verifier_session vrf(prog, test::test_key());
  const auto c1 = vrf.new_challenge();
  const auto rep1 = dev.invoke(c1, args(1, 2));
  (void)vrf.new_challenge();  // supersedes c1 (v1 semantics)
  // The v1 API folds it into a stale_challenge finding...
  const auto v = vrf.check(rep1);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(verifier::attack_kind::stale_challenge));
  // ...but the underlying hub reports the precise typed error.
  const auto c3 = vrf.new_challenge();
  const auto rep3 = dev.invoke(c3, args(1, 2));
  (void)vrf.new_challenge();
  const auto r = vrf.hub().verify_report(vrf.id(), rep3);
  EXPECT_EQ(r.error, proto_error::challenge_superseded);
}

// ---------------------------------------------------------------------------
// Stats renderers: Prometheus exposition format, strictly parsed
// ---------------------------------------------------------------------------

/// Strict line parser for the Prometheus text exposition format — the
/// subset our renderers emit. Returns false (with a reason) on anything
/// a real scraper would reject: malformed names, unescaped quote /
/// backslash / newline in a label value, trailing junk, NaN-ish values.
bool parse_exposition_line(const std::string& line, std::string& why) {
  const auto name_ok = [](const std::string& n) {
    if (n.empty()) return false;
    for (std::size_t i = 0; i < n.size(); ++i) {
      const char c = n[i];
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
      const bool digit = c >= '0' && c <= '9';
      if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) {
        return false;
      }
    }
    return true;
  };
  if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
    const auto rest = line.substr(7);
    const auto sp = rest.find(' ');
    if (sp == std::string::npos || !name_ok(rest.substr(0, sp)) ||
        sp + 1 >= rest.size()) {
      why = "malformed comment: " + line;
      return false;
    }
    if (line[2] == 'T') {
      const auto type = rest.substr(sp + 1);
      if (type != "counter" && type != "gauge") {
        why = "unknown TYPE: " + line;
        return false;
      }
    }
    return true;
  }

  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  if (!name_ok(line.substr(0, i))) {
    why = "bad metric name: " + line;
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (true) {
      std::size_t j = i;
      while (j < line.size() && line[j] != '=') ++j;
      if (j >= line.size() || !name_ok(line.substr(i, j - i)) ||
          j + 1 >= line.size() || line[j + 1] != '"') {
        why = "bad label name: " + line;
        return false;
      }
      i = j + 2;
      // Label value: only \\, \" and \n escapes; a raw quote ends it, a
      // raw backslash without a legal escape (or a raw newline, which
      // cannot appear in a line) is a renderer bug.
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size() ||
              (line[i + 1] != '\\' && line[i + 1] != '"' &&
               line[i + 1] != 'n')) {
            why = "illegal escape: " + line;
            return false;
          }
          ++i;
        }
        ++i;
      }
      if (i >= line.size()) {
        why = "unterminated label value: " + line;
        return false;
      }
      ++i;  // closing quote
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= line.size() || line[i] != '}') {
      why = "unterminated label set: " + line;
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    why = "missing value separator: " + line;
    return false;
  }
  const auto value = line.substr(i + 1);
  if (value.empty() ||
      value.find_first_not_of("0123456789.+-e") != std::string::npos) {
    why = "bad sample value: " + line;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Pipeline observability (PR 9): stage histograms + flight recorder
// threaded through verify
// ---------------------------------------------------------------------------

TEST(hub_obs, accepted_report_times_every_stage) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  verifier_hub hub(reg, {});
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g = hub.challenge(id);
  ASSERT_TRUE(
      hub.verify_report(id, g.seq, dev.invoke(g.nonce, args(2, 3)))
          .accepted());

  const auto p = hub.pipeline();
  // verify_report enters after decode, so journal/mac/replay/verdict
  // each saw exactly one sample (0ns at clock granularity still counts).
  using obs::stage;
  EXPECT_EQ(p.stages[static_cast<std::size_t>(stage::journal)].count, 1u);
  EXPECT_EQ(p.stages[static_cast<std::size_t>(stage::mac)].count, 1u);
  EXPECT_EQ(p.stages[static_cast<std::size_t>(stage::replay)].count, 1u);
  EXPECT_EQ(p.stages[static_cast<std::size_t>(stage::verdict)].count, 1u);
  // The replay dominates an accepted verify; its time must be nonzero
  // and no stage's sum may exceed the total recorded wall time.
  EXPECT_GT(p.stages[static_cast<std::size_t>(stage::replay)].sum_ns, 0u);

  // The (only) report is by definition the slowest: flight-recorded.
  const auto traces = hub.traces();
  ASSERT_EQ(traces.slow.size(), 1u);
  EXPECT_TRUE(traces.slow[0].accepted);
  EXPECT_EQ(traces.slow[0].device, id);
  EXPECT_GT(traces.slowest_ns, 0u);
  EXPECT_TRUE(traces.rejected.empty());
}

TEST(hub_obs, submit_times_decode_and_records_rejections) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  verifier_hub hub(reg, {});
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g = hub.challenge(id);
  const auto rep = dev.invoke(g.nonce, args(7, 8));
  proto::frame_info info;
  info.device_id = id;
  info.seq = g.seq;
  const auto frame = proto::encode_frame(info, rep);
  ASSERT_TRUE(hub.submit(frame).accepted());
  // Same frame again: the replay rejection must land in the rejected
  // ring with the typed error and the device identity attached.
  EXPECT_EQ(hub.submit(frame).error, proto_error::replayed_report);

  const auto p = hub.pipeline();
  using obs::stage;
  EXPECT_EQ(p.stages[static_cast<std::size_t>(stage::decode)].count, 2u);
  // The replayed submit never reached mac/replay.
  EXPECT_EQ(p.stages[static_cast<std::size_t>(stage::mac)].count, 1u);
  EXPECT_EQ(p.stages[static_cast<std::size_t>(stage::journal)].count, 2u);

  const auto traces = hub.traces();
  ASSERT_EQ(traces.rejected.size(), 1u);
  EXPECT_EQ(traces.rejected[0].device, id);
  EXPECT_EQ(traces.rejected[0].error,
            static_cast<std::uint8_t>(proto_error::replayed_report));
  EXPECT_FALSE(traces.rejected[0].accepted);
}

TEST(hub_obs, disabled_observability_records_nothing) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  hub_config cfg;
  cfg.obs.enabled = false;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto g = hub.challenge(id);
  ASSERT_TRUE(
      hub.verify_report(id, g.seq, dev.invoke(g.nonce, args(1, 1)))
          .accepted());

  const auto p = hub.pipeline();
  for (const auto& st : p.stages) EXPECT_EQ(st.count, 0u);
  const auto traces = hub.traces();
  EXPECT_TRUE(traces.slow.empty());
  EXPECT_TRUE(traces.rejected.empty());
  EXPECT_EQ(traces.slowest_ns, 0u);
}

TEST(stats_render, escape_label_value_covers_the_three_escapes) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("two\nlines"), "two\\nlines");
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
  // Everything else passes through untouched.
  EXPECT_EQ(escape_label_value("ümlaut {x=1}"), "ümlaut {x=1}");
}

TEST(stats_render, parser_rejects_unescaped_label_values) {
  std::string why;
  // Sanity-check the parser itself: an escaped hostile value passes...
  EXPECT_TRUE(parse_exposition_line(
      "m{reason=\"" + escape_label_value("evil\"\\\n") + "\"} 1", why))
      << why;
  // ...and the same value dropped in raw breaks the line.
  EXPECT_FALSE(parse_exposition_line("m{reason=\"evil\"\\\"} 1", why));
  EXPECT_FALSE(parse_exposition_line("m{reason=\"trailing\\\"} 1", why));
  EXPECT_FALSE(parse_exposition_line("m{reason=\"x\" 1", why));
  EXPECT_FALSE(parse_exposition_line("1badname 2", why));
}

TEST(stats_render, every_rendered_line_survives_a_strict_scraper) {
  // A hub_stats with every family populated, including the per-device
  // breakdown and the full rejection histogram.
  hub_stats s;
  s.challenges_issued = 12;
  s.challenges_expired = 1;
  s.challenges_superseded = 2;
  s.reports_accepted = 7;
  s.reports_rejected_verdict = 3;
  for (std::size_t i = 1; i < s.rejected_by_error.size(); ++i) {
    s.rejected_by_error[i] = i;
  }
  s.verify_batches = 4;
  s.verify_batch_frames = 9;
  s.last_batch_frames = 5;
  s.inflight_batches = 1;
  s.per_device[3] = device_counters{4, 1, 2, 0};
  s.per_device[900000001] = device_counters{1, 0, 0, 9};

  std::string out;
  render_stats_prometheus(s, out);
  hub_stats p1 = s;
  p1.challenges_issued = 99;
  render_partition_prometheus(std::vector<hub_stats>{s, p1}, out);

  std::size_t samples = 0;
  std::size_t partition_samples = 0;
  std::size_t start = 0;
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.back(), '\n');
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const auto line = out.substr(start, end - start);
    start = end + 1;
    std::string why;
    EXPECT_TRUE(parse_exposition_line(line, why)) << why;
    if (line.rfind("# ", 0) != 0) {
      ++samples;
      if (line.rfind("dialed_partition_", 0) == 0) ++partition_samples;
    }
  }
  // Every scalar family, one histogram line per typed error, 4 outcome
  // lines per device, and the 4 per-partition families x 2 partitions.
  EXPECT_GE(samples, 9u + (proto::proto_error_count - 1) + 8u + 8u);
  EXPECT_EQ(partition_samples, 8u);

  // Empty partition span: unpartitioned scrape bodies are unchanged.
  std::string unchanged = out;
  render_partition_prometheus({}, unchanged);
  EXPECT_EQ(unchanged, out);
}

}  // namespace
}  // namespace dialed::fleet
