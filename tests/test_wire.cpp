// Wire format (framing/CRC) and taint-provenance analysis.
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "proto/session.h"
#include "proto/wire.h"

namespace dialed::proto {
namespace {

using test::build_op;
using test::test_key;

verifier::attestation_report sample_report() {
  const auto prog = build_op("int op(int a, int b) { return a * b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  chal.fill(0x3c);
  invocation inv;
  inv.args = {6, 7, 0, 0, 0, 0, 0, 0};
  return dev.invoke(chal, inv);
}

TEST(wire, encode_decode_round_trip) {
  const auto rep = sample_report();
  const auto frame = encode_report(rep);
  const auto back = decode_report(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->er_min, rep.er_min);
  EXPECT_EQ(back->er_max, rep.er_max);
  EXPECT_EQ(back->or_min, rep.or_min);
  EXPECT_EQ(back->or_max, rep.or_max);
  EXPECT_EQ(back->exec, rep.exec);
  EXPECT_EQ(back->challenge, rep.challenge);
  EXPECT_EQ(back->mac, rep.mac);
  EXPECT_EQ(back->or_bytes, rep.or_bytes);
  EXPECT_EQ(back->claimed_result, rep.claimed_result);
  EXPECT_EQ(back->halt_code, rep.halt_code);
}

TEST(wire, decoded_report_still_verifies) {
  const auto prog = build_op("int op(int a, int b) { return a * b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto rep = dev.invoke(vrf.new_challenge(), [] {
    invocation i;
    i.args = {6, 7, 0, 0, 0, 0, 0, 0};
    return i;
  }());
  const auto back = decode_report(encode_report(rep));
  ASSERT_TRUE(back.has_value());
  const auto v = vrf.check(*back);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.replayed_result, 42);
}

TEST(wire, rejects_bad_magic_version_and_length) {
  const auto frame = encode_report(sample_report());
  auto bad = frame;
  bad[0] ^= 0xff;
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = frame;
  bad[2] = 9;
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = frame;
  bad.pop_back();
  EXPECT_FALSE(decode_report(bad).has_value());
  EXPECT_FALSE(decode_report(byte_vec(10, 0)).has_value());
}

TEST(wire, crc_catches_payload_corruption) {
  auto frame = encode_report(sample_report());
  frame[100] ^= 0x01;  // flip a bit inside the OR payload
  EXPECT_FALSE(decode_report(frame).has_value());
}

TEST(wire, crc16_known_answer) {
  const byte_vec msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(msg), 0x29b1);  // CRC-16/CCITT-FALSE check value
  EXPECT_EQ(crc16_ccitt(byte_vec{}), 0xffff);
}

// ---------------------------------------------------------------------------
// Versioned codec: wire v2, typed errors, v1<->v2 interplay
// ---------------------------------------------------------------------------

TEST(wire_v2, round_trip_carries_device_id_and_seq) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 0xdeadbeef;
  info.seq = 40'000'001;
  const auto frame = encode_frame(info, rep);
  const auto r = decode_frame(frame);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame.info.version, wire_v2);
  EXPECT_EQ(r.frame.info.device_id, 0xdeadbeefu);
  EXPECT_EQ(r.frame.info.seq, 40'000'001u);
  EXPECT_EQ(r.frame.report.challenge, rep.challenge);
  EXPECT_EQ(r.frame.report.mac, rep.mac);
  EXPECT_EQ(r.frame.report.or_bytes, rep.or_bytes);
  EXPECT_EQ(r.frame.report.claimed_result, rep.claimed_result);
}

TEST(wire_v2, truncation_at_every_boundary_is_a_typed_error) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 7;
  info.seq = 1;
  const auto frame = encode_frame(info, rep);
  constexpr std::size_t v2_header = 74;
  ASSERT_GT(frame.size(), v2_header + 2);
  // Every proper prefix must fail with a typed transport error — never
  // crash, never parse.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto cut = std::span<const std::uint8_t>(frame).subspan(0, len);
    const auto r = decode_frame(cut);
    ASSERT_FALSE(r.ok()) << "prefix length " << len;
    EXPECT_TRUE(is_transport_error(r.error)) << "prefix length " << len;
    if (len < v2_header + 2) {
      EXPECT_EQ(r.error, proto_error::truncated) << "prefix length " << len;
    } else {
      EXPECT_EQ(r.error, proto_error::bad_length) << "prefix length " << len;
    }
  }
}

TEST(wire_v2, typed_magic_version_and_crc_errors) {
  const auto frame = encode_frame(frame_info{}, sample_report());
  auto bad = frame;
  bad[0] ^= 0xff;
  EXPECT_EQ(decode_frame(bad).error, proto_error::bad_magic);
  bad = frame;
  bad[2] = 9;
  EXPECT_EQ(decode_frame(bad).error, proto_error::bad_version);
  bad = frame;
  bad[80] ^= 0x01;  // flip a payload bit: CRC catches it
  EXPECT_EQ(decode_frame(bad).error, proto_error::bad_crc);
  EXPECT_THROW(encode_frame(frame_info{.version = 9}, sample_report()),
               error);
}

TEST(wire_v2, cross_decode_v1_and_v2) {
  const auto rep = sample_report();
  // A v1 frame decodes through the versioned codec with no identity.
  const auto v1_frame = encode_report(rep);
  const auto r1 = decode_frame(v1_frame);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.frame.info.version, wire_v1);
  EXPECT_EQ(r1.frame.info.device_id, 0u);
  EXPECT_EQ(r1.frame.info.seq, 0u);
  EXPECT_EQ(r1.frame.report.or_bytes, rep.or_bytes);
  // A v2 frame decodes through the v1-era convenience helper.
  frame_info info;
  info.device_id = 3;
  info.seq = 5;
  const auto v2_frame = encode_frame(info, rep);
  const auto back = decode_report(v2_frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->mac, rep.mac);
}

TEST(wire_v2, version_confusion_is_a_typed_error_not_a_crash) {
  const auto rep = sample_report();
  // A v2 frame relabeled v1: offsets shift, the CRC (or length) must trip.
  auto v2_as_v1 = encode_frame(frame_info{.device_id = 9}, rep);
  v2_as_v1[2] = wire_v1;
  const auto r1 = decode_frame(v2_as_v1);
  EXPECT_FALSE(r1.ok());
  EXPECT_TRUE(is_transport_error(r1.error));
  // A v1 frame relabeled v2 likewise.
  auto v1_as_v2 = encode_report(rep);
  v1_as_v2[2] = wire_v2;
  const auto r2 = decode_frame(v1_as_v2);
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(is_transport_error(r2.error));
}

TEST(wire_v2, decode_into_reuses_caller_storage) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 2;
  const auto frame = encode_frame(info, rep);
  decoded_frame scratch;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(decode_frame_into(frame, scratch), proto_error::none);
    EXPECT_EQ(scratch.report.or_bytes, rep.or_bytes);
    EXPECT_EQ(scratch.info.device_id, 2u);
  }
}

TEST(wire_v2, oversize_or_is_rejected_not_truncated) {
  // Regression: the 16-bit or_bytes length field used to be filled with a
  // silent cast, so a 65536-byte OR encoded as length 0 — a frame that
  // could never decode. It must be a typed bad_length error instead.
  verifier::attestation_report rep;
  rep.or_bytes.assign(max_or_bytes + 1, 0xab);
  frame_info info;
  info.device_id = 7;
  byte_vec out;
  EXPECT_EQ(encode_frame_into(info, rep, out), proto_error::bad_length);
  EXPECT_TRUE(out.empty());
  EXPECT_THROW(encode_frame(info, rep), error);
  // v1 has the same length field; same rejection.
  info.version = wire_v1;
  EXPECT_EQ(encode_frame_into(info, rep, out), proto_error::bad_length);

  // The boundary case still encodes and round-trips: exactly max_or_bytes.
  rep.or_bytes.resize(max_or_bytes);
  info.version = wire_v2;
  ASSERT_EQ(encode_frame_into(info, rep, out), proto_error::none);
  const auto back = decode_frame(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.frame.report.or_bytes.size(), max_or_bytes);
  EXPECT_EQ(back.frame.report.or_bytes, rep.or_bytes);
}

TEST(wire_v2, encode_frame_into_reuses_and_clears_storage) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 5;
  byte_vec out(500, 0xff);  // stale garbage the encoder must not keep
  ASSERT_EQ(encode_frame_into(info, rep, out), proto_error::none);
  EXPECT_EQ(out, encode_frame(info, rep));
  // An unknown version is typed too, and leaves out empty.
  info.version = 9;
  EXPECT_EQ(encode_frame_into(info, rep, out), proto_error::bad_version);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Taint provenance over the replay
// ---------------------------------------------------------------------------

TEST(taint, argument_derived_result_is_tainted) {
  const auto prog = build_op("int op(int a, int b) { return a + b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {1, 2, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  EXPECT_TRUE(v.result_tainted);
}

TEST(taint, constant_result_is_untainted) {
  const auto prog = build_op("int op(int a) { return 1234; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), {}));
  ASSERT_TRUE(v.accepted);
  EXPECT_FALSE(v.result_tainted);
}

TEST(taint, mmio_write_of_constant_untainted_of_input_tainted) {
  const auto prog = build_op(
      "int op(int v) { __mmio_w8(25, 1); __mmio_w8(25, v); return 0; }",
      "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {0, 0, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  // Collect the P3OUT writes from the io trace.
  std::vector<verifier::io_event> p3;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019) p3.push_back(e);
  }
  ASSERT_EQ(p3.size(), 2u);
  EXPECT_FALSE(p3[0].tainted);  // constant 1
  EXPECT_TRUE(p3[1].tainted);   // the argument
}

TEST(taint, flows_through_globals_and_arithmetic) {
  const auto prog = build_op(
      "int g;"
      "int op(int v) { g = v * 3; int x = g + 1; __mmio_w8(25, x);"
      "  return 7; }",
      "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {2, 0, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  ASSERT_FALSE(v.io_trace.empty());
  bool any_tainted_p3 = false;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019 && e.tainted) any_tainted_p3 = true;
  }
  EXPECT_TRUE(any_tainted_p3);
  EXPECT_FALSE(v.result_tainted);  // returns the constant 7
}

TEST(taint, fig2_attack_actuation_is_input_tainted) {
  // The Fig. 2 verdict can explain itself: the actuation value was
  // attacker-influenced (the clobbered `set` was selected by the index).
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig2_attack()));
  EXPECT_FALSE(v.accepted);
  bool tainted_actuation = false;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019 && e.tainted) tainted_actuation = true;
  }
  EXPECT_TRUE(tainted_actuation);
}

}  // namespace
}  // namespace dialed::proto
