// Wire format (framing/CRC) and taint-provenance analysis.
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "proto/session.h"
#include "proto/wire.h"

namespace dialed::proto {
namespace {

using test::build_op;
using test::test_key;

verifier::attestation_report sample_report() {
  const auto prog = build_op("int op(int a, int b) { return a * b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  chal.fill(0x3c);
  invocation inv;
  inv.args = {6, 7, 0, 0, 0, 0, 0, 0};
  return dev.invoke(chal, inv);
}

TEST(wire, encode_decode_round_trip) {
  const auto rep = sample_report();
  const auto frame = encode_report(rep);
  const auto back = decode_report(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->er_min, rep.er_min);
  EXPECT_EQ(back->er_max, rep.er_max);
  EXPECT_EQ(back->or_min, rep.or_min);
  EXPECT_EQ(back->or_max, rep.or_max);
  EXPECT_EQ(back->exec, rep.exec);
  EXPECT_EQ(back->challenge, rep.challenge);
  EXPECT_EQ(back->mac, rep.mac);
  EXPECT_EQ(back->or_bytes, rep.or_bytes);
  EXPECT_EQ(back->claimed_result, rep.claimed_result);
  EXPECT_EQ(back->halt_code, rep.halt_code);
}

TEST(wire, decoded_report_still_verifies) {
  const auto prog = build_op("int op(int a, int b) { return a * b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto rep = dev.invoke(vrf.new_challenge(), [] {
    invocation i;
    i.args = {6, 7, 0, 0, 0, 0, 0, 0};
    return i;
  }());
  const auto back = decode_report(encode_report(rep));
  ASSERT_TRUE(back.has_value());
  const auto v = vrf.check(*back);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.replayed_result, 42);
}

TEST(wire, rejects_bad_magic_version_and_length) {
  const auto frame = encode_report(sample_report());
  auto bad = frame;
  bad[0] ^= 0xff;
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = frame;
  bad[2] = 9;
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = frame;
  bad.pop_back();
  EXPECT_FALSE(decode_report(bad).has_value());
  EXPECT_FALSE(decode_report(byte_vec(10, 0)).has_value());
}

TEST(wire, crc_catches_payload_corruption) {
  auto frame = encode_report(sample_report());
  frame[100] ^= 0x01;  // flip a bit inside the OR payload
  EXPECT_FALSE(decode_report(frame).has_value());
}

TEST(wire, crc16_known_answer) {
  const byte_vec msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(msg), 0x29b1);  // CRC-16/CCITT-FALSE check value
  EXPECT_EQ(crc16_ccitt(byte_vec{}), 0xffff);
}

// ---------------------------------------------------------------------------
// Taint provenance over the replay
// ---------------------------------------------------------------------------

TEST(taint, argument_derived_result_is_tainted) {
  const auto prog = build_op("int op(int a, int b) { return a + b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {1, 2, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  EXPECT_TRUE(v.result_tainted);
}

TEST(taint, constant_result_is_untainted) {
  const auto prog = build_op("int op(int a) { return 1234; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), {}));
  ASSERT_TRUE(v.accepted);
  EXPECT_FALSE(v.result_tainted);
}

TEST(taint, mmio_write_of_constant_untainted_of_input_tainted) {
  const auto prog = build_op(
      "int op(int v) { __mmio_w8(25, 1); __mmio_w8(25, v); return 0; }",
      "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {0, 0, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  // Collect the P3OUT writes from the io trace.
  std::vector<verifier::io_event> p3;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019) p3.push_back(e);
  }
  ASSERT_EQ(p3.size(), 2u);
  EXPECT_FALSE(p3[0].tainted);  // constant 1
  EXPECT_TRUE(p3[1].tainted);   // the argument
}

TEST(taint, flows_through_globals_and_arithmetic) {
  const auto prog = build_op(
      "int g;"
      "int op(int v) { g = v * 3; int x = g + 1; __mmio_w8(25, x);"
      "  return 7; }",
      "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {2, 0, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  ASSERT_FALSE(v.io_trace.empty());
  bool any_tainted_p3 = false;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019 && e.tainted) any_tainted_p3 = true;
  }
  EXPECT_TRUE(any_tainted_p3);
  EXPECT_FALSE(v.result_tainted);  // returns the constant 7
}

TEST(taint, fig2_attack_actuation_is_input_tainted) {
  // The Fig. 2 verdict can explain itself: the actuation value was
  // attacker-influenced (the clobbered `set` was selected by the index).
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig2_attack()));
  EXPECT_FALSE(v.accepted);
  bool tainted_actuation = false;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019 && e.tainted) tainted_actuation = true;
  }
  EXPECT_TRUE(tainted_actuation);
}

}  // namespace
}  // namespace dialed::proto
