// Wire format (framing/CRC) and taint-provenance analysis.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "helpers.h"
#include "proto/session.h"
#include "proto/wire.h"

namespace dialed::proto {
namespace {

using test::build_op;
using test::test_key;

verifier::attestation_report sample_report() {
  const auto prog = build_op("int op(int a, int b) { return a * b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  chal.fill(0x3c);
  invocation inv;
  inv.args = {6, 7, 0, 0, 0, 0, 0, 0};
  return dev.invoke(chal, inv);
}

TEST(wire, encode_decode_round_trip) {
  const auto rep = sample_report();
  const auto frame = encode_report(rep);
  const auto back = decode_report(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->er_min, rep.er_min);
  EXPECT_EQ(back->er_max, rep.er_max);
  EXPECT_EQ(back->or_min, rep.or_min);
  EXPECT_EQ(back->or_max, rep.or_max);
  EXPECT_EQ(back->exec, rep.exec);
  EXPECT_EQ(back->challenge, rep.challenge);
  EXPECT_EQ(back->mac, rep.mac);
  EXPECT_EQ(back->or_bytes, rep.or_bytes);
  EXPECT_EQ(back->claimed_result, rep.claimed_result);
  EXPECT_EQ(back->halt_code, rep.halt_code);
}

TEST(wire, decoded_report_still_verifies) {
  const auto prog = build_op("int op(int a, int b) { return a * b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto rep = dev.invoke(vrf.new_challenge(), [] {
    invocation i;
    i.args = {6, 7, 0, 0, 0, 0, 0, 0};
    return i;
  }());
  const auto back = decode_report(encode_report(rep));
  ASSERT_TRUE(back.has_value());
  const auto v = vrf.check(*back);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.replayed_result, 42);
}

TEST(wire, rejects_bad_magic_version_and_length) {
  const auto frame = encode_report(sample_report());
  auto bad = frame;
  bad[0] ^= 0xff;
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = frame;
  bad[2] = 9;
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = frame;
  bad.pop_back();
  EXPECT_FALSE(decode_report(bad).has_value());
  EXPECT_FALSE(decode_report(byte_vec(10, 0)).has_value());
}

TEST(wire, crc_catches_payload_corruption) {
  auto frame = encode_report(sample_report());
  frame[100] ^= 0x01;  // flip a bit inside the OR payload
  EXPECT_FALSE(decode_report(frame).has_value());
}

TEST(wire, crc16_known_answer) {
  const byte_vec msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(msg), 0x29b1);  // CRC-16/CCITT-FALSE check value
  EXPECT_EQ(crc16_ccitt(byte_vec{}), 0xffff);
}

// ---------------------------------------------------------------------------
// Versioned codec: wire v2, typed errors, v1<->v2 interplay
// ---------------------------------------------------------------------------

TEST(wire_v2, round_trip_carries_device_id_and_seq) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 0xdeadbeef;
  info.seq = 40'000'001;
  const auto frame = encode_frame(info, rep);
  const auto r = decode_frame(frame);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame.info.version, wire_v2);
  EXPECT_EQ(r.frame.info.device_id, 0xdeadbeefu);
  EXPECT_EQ(r.frame.info.seq, 40'000'001u);
  EXPECT_EQ(r.frame.report.challenge, rep.challenge);
  EXPECT_EQ(r.frame.report.mac, rep.mac);
  EXPECT_EQ(r.frame.report.or_bytes, rep.or_bytes);
  EXPECT_EQ(r.frame.report.claimed_result, rep.claimed_result);
}

TEST(wire_v2, truncation_at_every_boundary_is_a_typed_error) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 7;
  info.seq = 1;
  const auto frame = encode_frame(info, rep);
  constexpr std::size_t v2_header = 74;
  ASSERT_GT(frame.size(), v2_header + 2);
  // Every proper prefix must fail with a typed transport error — never
  // crash, never parse.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto cut = std::span<const std::uint8_t>(frame).subspan(0, len);
    const auto r = decode_frame(cut);
    ASSERT_FALSE(r.ok()) << "prefix length " << len;
    EXPECT_TRUE(is_transport_error(r.error)) << "prefix length " << len;
    if (len < v2_header + 2) {
      EXPECT_EQ(r.error, proto_error::truncated) << "prefix length " << len;
    } else {
      EXPECT_EQ(r.error, proto_error::bad_length) << "prefix length " << len;
    }
  }
}

TEST(wire_v2, typed_magic_version_and_crc_errors) {
  const auto frame = encode_frame(frame_info{}, sample_report());
  auto bad = frame;
  bad[0] ^= 0xff;
  EXPECT_EQ(decode_frame(bad).error, proto_error::bad_magic);
  bad = frame;
  bad[2] = 9;
  EXPECT_EQ(decode_frame(bad).error, proto_error::bad_version);
  bad = frame;
  bad[80] ^= 0x01;  // flip a payload bit: CRC catches it
  EXPECT_EQ(decode_frame(bad).error, proto_error::bad_crc);
  EXPECT_THROW(encode_frame(frame_info{.version = 9}, sample_report()),
               error);
}

TEST(wire_v2, cross_decode_v1_and_v2) {
  const auto rep = sample_report();
  // A v1 frame decodes through the versioned codec with no identity.
  const auto v1_frame = encode_report(rep);
  const auto r1 = decode_frame(v1_frame);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.frame.info.version, wire_v1);
  EXPECT_EQ(r1.frame.info.device_id, 0u);
  EXPECT_EQ(r1.frame.info.seq, 0u);
  EXPECT_EQ(r1.frame.report.or_bytes, rep.or_bytes);
  // A v2 frame decodes through the v1-era convenience helper.
  frame_info info;
  info.device_id = 3;
  info.seq = 5;
  const auto v2_frame = encode_frame(info, rep);
  const auto back = decode_report(v2_frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->mac, rep.mac);
}

TEST(wire_v2, version_confusion_is_a_typed_error_not_a_crash) {
  const auto rep = sample_report();
  // A v2 frame relabeled v1: offsets shift, the CRC (or length) must trip.
  auto v2_as_v1 = encode_frame(frame_info{.device_id = 9}, rep);
  v2_as_v1[2] = wire_v1;
  const auto r1 = decode_frame(v2_as_v1);
  EXPECT_FALSE(r1.ok());
  EXPECT_TRUE(is_transport_error(r1.error));
  // A v1 frame relabeled v2 likewise.
  auto v1_as_v2 = encode_report(rep);
  v1_as_v2[2] = wire_v2;
  const auto r2 = decode_frame(v1_as_v2);
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(is_transport_error(r2.error));
}

TEST(wire_v2, decode_into_reuses_caller_storage) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 2;
  const auto frame = encode_frame(info, rep);
  decoded_frame scratch;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(decode_frame_into(frame, scratch), proto_error::none);
    EXPECT_EQ(scratch.report.or_bytes, rep.or_bytes);
    EXPECT_EQ(scratch.info.device_id, 2u);
  }
}

TEST(wire_v2, borrow_mode_aliases_frame_without_copying) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 3;
  auto frame = encode_frame(info, rep);
  decoded_frame scratch;
  ASSERT_EQ(decode_frame_into(frame, scratch, decode_mode::borrow),
            proto_error::none);
  // Zero-copy: or_bytes owns nothing, or_view points INTO the frame.
  EXPECT_TRUE(scratch.report.or_bytes.empty());
  ASSERT_EQ(scratch.or_view.size(), rep.or_bytes.size());
  EXPECT_TRUE(std::equal(scratch.or_view.begin(), scratch.or_view.end(),
                         rep.or_bytes.begin()));
  EXPECT_GE(scratch.or_view.data(), frame.data());
  EXPECT_LT(scratch.or_view.data(), frame.data() + frame.size());
  // Aliasing is observable: mutate the frame byte under the view.
  const auto off =
      static_cast<std::size_t>(scratch.or_view.data() - frame.data());
  frame[off] ^= 0xff;
  EXPECT_EQ(scratch.or_view[0],
            static_cast<std::uint8_t>(rep.or_bytes[0] ^ 0xff));
  // Scalar fields were still decoded by value.
  EXPECT_EQ(scratch.info.device_id, 3u);
  EXPECT_EQ(scratch.report.mac, rep.mac);
}

TEST(wire_v2, copy_mode_or_view_aliases_owned_storage) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 4;
  const auto frame = encode_frame(info, rep);
  decoded_frame scratch;
  ASSERT_EQ(decode_frame_into(frame, scratch, decode_mode::copy),
            proto_error::none);
  // Self-contained: or_view is just a window over the owned copy, so the
  // frame buffer may be freed or reused immediately.
  EXPECT_EQ(scratch.report.or_bytes, rep.or_bytes);
  EXPECT_EQ(scratch.or_view.data(), scratch.report.or_bytes.data());
  EXPECT_EQ(scratch.or_view.size(), scratch.report.or_bytes.size());
}

TEST(wire_v2, oversize_or_is_rejected_not_truncated) {
  // Regression: the 16-bit or_bytes length field used to be filled with a
  // silent cast, so a 65536-byte OR encoded as length 0 — a frame that
  // could never decode. It must be a typed bad_length error instead.
  verifier::attestation_report rep;
  rep.or_bytes.assign(max_or_bytes + 1, 0xab);
  frame_info info;
  info.device_id = 7;
  byte_vec out;
  EXPECT_EQ(encode_frame_into(info, rep, out), proto_error::bad_length);
  EXPECT_TRUE(out.empty());
  EXPECT_THROW(encode_frame(info, rep), error);
  // v1 has the same length field; same rejection.
  info.version = wire_v1;
  EXPECT_EQ(encode_frame_into(info, rep, out), proto_error::bad_length);

  // The boundary case still encodes and round-trips: exactly max_or_bytes.
  rep.or_bytes.resize(max_or_bytes);
  info.version = wire_v2;
  ASSERT_EQ(encode_frame_into(info, rep, out), proto_error::none);
  const auto back = decode_frame(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.frame.report.or_bytes.size(), max_or_bytes);
  EXPECT_EQ(back.frame.report.or_bytes, rep.or_bytes);
}

TEST(wire_v2, encode_frame_into_reuses_and_clears_storage) {
  const auto rep = sample_report();
  frame_info info;
  info.device_id = 5;
  byte_vec out(500, 0xff);  // stale garbage the encoder must not keep
  ASSERT_EQ(encode_frame_into(info, rep, out), proto_error::none);
  EXPECT_EQ(out, encode_frame(info, rep));
  // An unknown version is typed too, and leaves out empty.
  info.version = 9;
  EXPECT_EQ(encode_frame_into(info, rep, out), proto_error::bad_version);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Wire v2.1: delta frames
// ---------------------------------------------------------------------------

verifier::attestation_report synthetic_report(std::size_t or_len,
                                              std::uint8_t fill) {
  verifier::attestation_report rep;
  rep.er_min = 0xc000;
  rep.er_max = 0xc100;
  rep.or_min = 0x0600;
  rep.or_max = static_cast<std::uint16_t>(0x0600 + or_len - 2);
  rep.exec = true;
  rep.challenge.fill(0x11);
  rep.mac.fill(0x22);
  rep.claimed_result = 42;
  rep.halt_code = 1;
  rep.or_bytes.assign(or_len, fill);
  return rep;
}

TEST(wire_v21, delta_round_trip_reconstructs_exactly) {
  auto base_rep = synthetic_report(512, 0xaa);
  auto rep = base_rep;
  // Sparse changes: an isolated byte, a short run, and a tail run.
  rep.or_bytes[3] = 0x01;
  for (std::size_t i = 100; i < 108; ++i) rep.or_bytes[i] = 0x02;
  for (std::size_t i = 500; i < 512; ++i) rep.or_bytes[i] = 0x03;

  frame_info info;
  info.device_id = 9;
  info.seq = 7;
  const auto frame =
      encode_delta_frame(info, rep, /*baseline_seq=*/6, base_rep.or_bytes);
  // The whole point: far smaller than the full frame.
  EXPECT_LT(frame.size(), encode_frame(info, rep).size() / 2);

  const auto r = decode_frame(frame);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame.info.version, wire_v21);
  EXPECT_EQ(r.frame.info.device_id, 9u);
  EXPECT_EQ(r.frame.info.seq, 7u);
  ASSERT_TRUE(r.frame.delta.present);
  EXPECT_EQ(r.frame.delta.baseline_seq, 6u);
  EXPECT_EQ(r.frame.delta.baseline_hash,
            or_baseline_hash(6, base_rep.or_bytes));
  EXPECT_TRUE(r.frame.report.or_bytes.empty());
  EXPECT_EQ(r.frame.report.challenge, rep.challenge);
  EXPECT_EQ(r.frame.report.mac, rep.mac);

  byte_vec rebuilt;
  ASSERT_EQ(apply_or_delta(r.frame.delta, base_rep.or_bytes, rebuilt),
            proto_error::none);
  EXPECT_EQ(rebuilt, rep.or_bytes);
}

TEST(wire_v21, identical_or_is_a_header_only_frame) {
  const auto rep = synthetic_report(2048, 0x5c);
  frame_info info;
  info.device_id = 1;
  info.seq = 2;
  const auto frame = encode_delta_frame(info, rep, 1, rep.or_bytes);
  EXPECT_EQ(frame.size(), 90u);  // 88-byte header + CRC, zero segments
  const auto r = decode_frame(frame);
  ASSERT_TRUE(r.ok());
  byte_vec rebuilt;
  ASSERT_EQ(apply_or_delta(r.frame.delta, rep.or_bytes, rebuilt),
            proto_error::none);
  EXPECT_EQ(rebuilt, rep.or_bytes);
}

TEST(wire_v21, length_changes_reconstruct_exactly) {
  // Shrinking and growing ORs: the reconstruction truncates or
  // zero-extends the baseline before splatting segments.
  const auto baseline = synthetic_report(300, 0x10).or_bytes;
  for (const std::size_t new_len :
       {std::size_t{100}, std::size_t{300}, std::size_t{450}}) {
    auto rep = synthetic_report(new_len, 0x10);
    if (new_len > 7) rep.or_bytes[7] = 0x99;
    for (std::size_t i = 300; i < new_len; ++i) {
      rep.or_bytes[i] = static_cast<std::uint8_t>(i);
    }
    const auto frame =
        encode_delta_frame(frame_info{}, rep, 3, baseline);
    const auto r = decode_frame(frame);
    ASSERT_TRUE(r.ok()) << new_len;
    byte_vec rebuilt;
    ASSERT_EQ(apply_or_delta(r.frame.delta, baseline, rebuilt),
              proto_error::none)
        << new_len;
    EXPECT_EQ(rebuilt, rep.or_bytes) << new_len;
  }
}

TEST(wire_v21, truncation_at_every_boundary_is_a_typed_error) {
  auto base_rep = synthetic_report(256, 0x40);
  auto rep = base_rep;
  rep.or_bytes[10] ^= 0xff;
  rep.or_bytes[200] ^= 0xff;
  const auto frame =
      encode_delta_frame(frame_info{.device_id = 3, .seq = 9}, rep, 8,
                         base_rep.or_bytes);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto cut = std::span<const std::uint8_t>(frame).subspan(0, len);
    const auto r = decode_frame(cut);
    ASSERT_FALSE(r.ok()) << "prefix length " << len;
    EXPECT_TRUE(is_transport_error(r.error)) << "prefix length " << len;
  }
}

TEST(wire_v21, malformed_segments_are_bad_length) {
  auto base_rep = synthetic_report(64, 0x00);
  auto rep = base_rep;
  rep.or_bytes[5] = 1;
  rep.or_bytes[20] = 2;
  auto frame = encode_delta_frame(frame_info{}, rep, 1, base_rep.or_bytes);
  const auto refix = [](byte_vec f) {
    const auto body =
        std::span<const std::uint8_t>(f).subspan(0, f.size() - 2);
    const std::uint16_t crc = crc16_ccitt(body);
    f[f.size() - 2] = static_cast<std::uint8_t>(crc & 0xff);
    f[f.size() - 1] = static_cast<std::uint8_t>(crc >> 8);
    return f;
  };
  // Without a CRC re-fix, tampering is caught as transport corruption.
  {
    auto bad = frame;
    bad[88] ^= 0x01;  // first segment offset
    EXPECT_EQ(decode_frame(bad).error, proto_error::bad_crc);
  }
  // Segment offset beyond full_len (CRC fixed): a structural lie.
  {
    auto bad = frame;
    store_le16(bad, 88, 1000);  // full_len is 64
    EXPECT_EQ(decode_frame(refix(bad)).error, proto_error::bad_length);
  }
  // Segment length running past the frame.
  {
    auto bad = frame;
    store_le16(bad, 90, 0x4000);
    EXPECT_EQ(decode_frame(refix(bad)).error, proto_error::bad_length);
  }
  // Out-of-order segments (second starts before the first ends).
  {
    auto bad = frame;
    store_le16(bad, 88, 20);  // first segment moved onto the second's
    EXPECT_EQ(decode_frame(refix(bad)).error, proto_error::bad_length);
  }
  // Declared segment count larger than the frame carries.
  {
    auto bad = frame;
    store_le16(bad, 86, 9);
    EXPECT_EQ(decode_frame(refix(bad)).error, proto_error::bad_length);
  }
}

TEST(wire_v21, delta_frames_have_no_or_view_in_either_mode) {
  // A v2.1 frame carries no OR payload — only segments against a
  // baseline — so borrow mode has nothing to alias: or_view must stay
  // empty (and a stale view from a previous decode must not survive).
  auto base_rep = synthetic_report(128, 0x10);
  auto rep = base_rep;
  rep.or_bytes[5] = 0xee;
  const auto delta_frame = encode_delta_frame(
      frame_info{.device_id = 1, .seq = 2}, rep, 1, base_rep.or_bytes);
  for (const auto mode : {decode_mode::copy, decode_mode::borrow}) {
    decoded_frame scratch;
    // Seed a stale or_view first.
    ASSERT_EQ(decode_frame_into(encode_frame(frame_info{.device_id = 1},
                                             synthetic_report(64, 0x33)),
                                scratch, mode),
              proto_error::none);
    ASSERT_FALSE(scratch.or_view.empty());
    ASSERT_EQ(decode_frame_into(delta_frame, scratch, mode),
              proto_error::none);
    ASSERT_TRUE(scratch.delta.present);
    EXPECT_TRUE(scratch.or_view.empty());
    EXPECT_TRUE(scratch.report.or_bytes.empty());
  }
}

TEST(wire_v21, scratch_reuse_never_leaks_previous_frames) {
  // Regression for the decode-scratch audit: a LONGER previous frame's
  // bytes must never survive into a later, shorter decode — neither in
  // or_bytes nor as a stale delta section.
  decoded_frame scratch;

  // 1. A long v2 frame fills or_bytes.
  const auto long_rep = synthetic_report(900, 0x77);
  ASSERT_EQ(decode_frame_into(
                encode_frame(frame_info{.device_id = 1}, long_rep), scratch),
            proto_error::none);
  ASSERT_EQ(scratch.report.or_bytes.size(), 900u);
  EXPECT_FALSE(scratch.delta.present);

  // 2. A short v2.1 delta frame into the same scratch: or_bytes must be
  // EMPTY (not 900 stale bytes) and the delta populated.
  auto base_rep = synthetic_report(128, 0x10);
  auto rep = base_rep;
  rep.or_bytes[64] = 0xfe;
  ASSERT_EQ(
      decode_frame_into(encode_delta_frame(frame_info{.device_id = 1,
                                                      .seq = 2},
                                           rep, 1, base_rep.or_bytes),
                        scratch),
      proto_error::none);
  EXPECT_TRUE(scratch.report.or_bytes.empty());
  ASSERT_TRUE(scratch.delta.present);
  byte_vec rebuilt(4096, 0xdd);  // stale reconstruction scratch too
  ASSERT_EQ(apply_or_delta(scratch.delta, base_rep.or_bytes, rebuilt),
            proto_error::none);
  EXPECT_EQ(rebuilt, rep.or_bytes);

  // 3. Back to a v2 frame: the delta section must read as absent again
  // (a hub reusing the scratch would otherwise "reconstruct" a full
  // frame against a baseline).
  const auto short_rep = synthetic_report(64, 0x33);
  ASSERT_EQ(decode_frame_into(
                encode_frame(frame_info{.device_id = 1}, short_rep), scratch),
            proto_error::none);
  EXPECT_FALSE(scratch.delta.present);
  EXPECT_EQ(scratch.report.or_bytes, short_rep.or_bytes);
}

TEST(wire_v21, baseline_hash_is_sequence_stamped) {
  const byte_vec bytes(100, 0xab);
  EXPECT_NE(or_baseline_hash(1, bytes), or_baseline_hash(2, bytes));
  const byte_vec other(100, 0xac);
  EXPECT_NE(or_baseline_hash(1, bytes), or_baseline_hash(1, other));
  EXPECT_EQ(or_baseline_hash(7, bytes), or_baseline_hash(7, bytes));
}

// ---------------------------------------------------------------------------
// Taint provenance over the replay
// ---------------------------------------------------------------------------

TEST(taint, argument_derived_result_is_tainted) {
  const auto prog = build_op("int op(int a, int b) { return a + b; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {1, 2, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  EXPECT_TRUE(v.result_tainted);
}

TEST(taint, constant_result_is_untainted) {
  const auto prog = build_op("int op(int a) { return 1234; }", "op",
                             instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), {}));
  ASSERT_TRUE(v.accepted);
  EXPECT_FALSE(v.result_tainted);
}

TEST(taint, mmio_write_of_constant_untainted_of_input_tainted) {
  const auto prog = build_op(
      "int op(int v) { __mmio_w8(25, 1); __mmio_w8(25, v); return 0; }",
      "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {0, 0, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  // Collect the P3OUT writes from the io trace.
  std::vector<verifier::io_event> p3;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019) p3.push_back(e);
  }
  ASSERT_EQ(p3.size(), 2u);
  EXPECT_FALSE(p3[0].tainted);  // constant 1
  EXPECT_TRUE(p3[1].tainted);   // the argument
}

TEST(taint, flows_through_globals_and_arithmetic) {
  const auto prog = build_op(
      "int g;"
      "int op(int v) { g = v * 3; int x = g + 1; __mmio_w8(25, x);"
      "  return 7; }",
      "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  invocation inv;
  inv.args = {2, 0, 0, 0, 0, 0, 0, 0};
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), inv));
  ASSERT_TRUE(v.accepted);
  ASSERT_FALSE(v.io_trace.empty());
  bool any_tainted_p3 = false;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019 && e.tainted) any_tainted_p3 = true;
  }
  EXPECT_TRUE(any_tainted_p3);
  EXPECT_FALSE(v.result_tainted);  // returns the constant 7
}

TEST(taint, fig2_attack_actuation_is_input_tainted) {
  // The Fig. 2 verdict can explain itself: the actuation value was
  // attacker-influenced (the clobbered `set` was selected by the index).
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto v = vrf.check(dev.invoke(vrf.new_challenge(), apps::fig2_attack()));
  EXPECT_FALSE(v.accepted);
  bool tainted_actuation = false;
  for (const auto& e : v.io_trace) {
    if (e.addr == 0x0019 && e.tainted) tainted_actuation = true;
  }
  EXPECT_TRUE(tainted_actuation);
}

}  // namespace
}  // namespace dialed::proto
