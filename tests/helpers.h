// Shared test utilities: tiny assembly/mini-C runners over the emulator.
#ifndef DIALED_TESTS_HELPERS_H
#define DIALED_TESTS_HELPERS_H

#include <string>

#include "apps/apps.h"
#include "emu/machine.h"
#include "instr/oplink.h"
#include "masm/masm.h"
#include "proto/prover.h"
#include "proto/session.h"

namespace dialed::test {

inline byte_vec test_key() { return byte_vec(32, 0x5a); }

/// Assemble a raw program (must include its own .org/halt) and run it.
/// Returns the machine for state inspection.
inline std::unique_ptr<emu::machine> run_asm(const std::string& body,
                                             std::uint64_t max_cycles =
                                                 1'000'000) {
  emu::memory_map map;
  const std::string text = "        .org 0xc000\n__start:\n" + body +
                           "\n        .org RESET_VECTOR\n"
                           "        .word __start\n";
  auto img = masm::assemble_text(text, map.predefined_symbols());
  auto m = std::make_unique<emu::machine>(map);
  m->load(img);
  m->reset();
  m->run(max_cycles);
  return m;
}

/// Compile a mini-C op, link at the given instrumentation level.
inline instr::linked_program build_op(
    const std::string& source, const std::string& entry = "op",
    instr::instrumentation mode = instr::instrumentation::none,
    const instr::pass_options& popts = {}) {
  instr::link_options lo;
  lo.entry = entry;
  lo.mode = mode;
  lo.pass_opts = popts;
  return instr::build_operation(source, lo);
}

/// Run an op to completion and return its result (the RESULT mailbox).
inline std::uint16_t run_op(const instr::linked_program& prog,
                            const proto::invocation& inv) {
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto rep = dev.invoke(chal, inv);
  return rep.claimed_result;
}

/// Compile+run a mini-C `op` with up to 4 arguments; returns the result.
inline std::uint16_t eval_op(const std::string& source,
                             std::uint16_t a0 = 0, std::uint16_t a1 = 0,
                             std::uint16_t a2 = 0, std::uint16_t a3 = 0) {
  const auto prog = build_op(source);
  proto::invocation inv;
  inv.args = {a0, a1, a2, a3, 0, 0, 0, 0};
  return run_op(prog, inv);
}

}  // namespace dialed::test

#endif  // DIALED_TESTS_HELPERS_H
