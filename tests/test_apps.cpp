// The evaluation applications and the paper's Fig. 1 / Fig. 2 operations:
// device-level behaviour, instrumented-equivalence, and attack effects.
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"

namespace dialed::apps {
namespace {

using test::test_key;

std::array<std::uint8_t, 16> chal0() { return {}; }

// ---------------------------------------------------------------------------
// SyringePump behaviour
// ---------------------------------------------------------------------------

struct pump_case {
  char cmd;
  std::uint8_t ul;
  std::uint16_t max_steps;
  std::uint16_t expected_moved;
};

class syringe_pump : public ::testing::TestWithParam<pump_case> {};

TEST_P(syringe_pump, moves_the_commanded_steps_with_bounds) {
  const auto& c = GetParam();
  auto app = evaluation_apps()[0];
  const auto prog = build_app(app, instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::invocation inv;
  inv.args[0] = c.max_steps;
  inv.net_rx = {static_cast<std::uint8_t>(c.cmd), c.ul};
  const auto rep = dev.invoke(chal0(), inv);
  EXPECT_EQ(rep.claimed_result, c.expected_moved);
  EXPECT_TRUE(rep.exec);
}

INSTANTIATE_TEST_SUITE_P(
    commands, syringe_pump,
    ::testing::Values(pump_case{'+', 5, 64, 10},   // 5ul * 2 steps/ul
                      pump_case{'+', 40, 30, 30},  // clamped to max_steps
                      pump_case{'-', 5, 64, 0},    // plunger already at 0
                      pump_case{'?', 5, 64, 0}));  // unknown command

TEST(syringe_pump_device, gpio_pulses_once_per_step) {
  auto app = evaluation_apps()[0];
  const auto prog = build_app(app, instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::invocation inv;
  inv.args[0] = 64;
  inv.net_rx = {'+', 3};  // 6 steps
  dev.invoke(chal0(), inv);
  // Each step writes the pattern then 0: two GPIO writes per step.
  EXPECT_EQ(dev.machine().gpio().history().size(), 12u);
}

// ---------------------------------------------------------------------------
// FireSensor behaviour
// ---------------------------------------------------------------------------

TEST(fire_sensor_device, below_threshold_no_alarm) {
  auto app = evaluation_apps()[1];
  const auto prog = build_app(app, instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::invocation inv;
  inv.args[0] = 100;          // threshold
  inv.adc_samples = {80};     // avg = 80/8 = 10 < 100
  const auto rep = dev.invoke(chal0(), inv);
  EXPECT_EQ(rep.claimed_result, 10);
  EXPECT_EQ(dev.machine().gpio().output(), 0);
}

TEST(fire_sensor_device, above_threshold_raises_alarm) {
  auto app = evaluation_apps()[1];
  const auto prog = build_app(app, instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::invocation inv;
  inv.args[0] = 10;
  inv.adc_samples = {1000};   // avg = 125 > 10
  const auto rep = dev.invoke(chal0(), inv);
  EXPECT_EQ(rep.claimed_result, 125);
  EXPECT_EQ(dev.machine().gpio().output(), 1);
}

// ---------------------------------------------------------------------------
// UltrasonicRanger behaviour
// ---------------------------------------------------------------------------

struct ranger_case {
  std::uint16_t samples;
  std::vector<std::uint16_t> echoes;
  std::uint16_t expected_cm;
};

class ranger : public ::testing::TestWithParam<ranger_case> {};

TEST_P(ranger, averages_and_converts_to_cm) {
  const auto& c = GetParam();
  auto app = evaluation_apps()[2];
  const auto prog = build_app(app, instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::invocation inv;
  inv.args[0] = c.samples;
  inv.adc_samples = c.echoes;
  const auto rep = dev.invoke(chal0(), inv);
  EXPECT_EQ(rep.claimed_result, c.expected_cm);
}

INSTANTIATE_TEST_SUITE_P(
    readings, ranger,
    ::testing::Values(
        ranger_case{1, {580}, 10},
        ranger_case{4, {1180, 1160, 1220, 1200}, 20},
        ranger_case{2, {58, 58}, 1},
        // sample count clamped to [1, 8]
        ranger_case{0, {580}, 10}));

// ---------------------------------------------------------------------------
// Cross-app instrumentation equivalence (the paper's implicit soundness
// requirement: instrumentation must not change app behaviour)
// ---------------------------------------------------------------------------

class app_equivalence : public ::testing::TestWithParam<int> {};

TEST_P(app_equivalence, all_modes_produce_identical_results) {
  const auto app = evaluation_apps()[static_cast<std::size_t>(GetParam())];
  std::uint16_t results[3];
  int i = 0;
  for (const auto mode :
       {instr::instrumentation::none, instr::instrumentation::tinycfa,
        instr::instrumentation::dialed}) {
    const auto prog = build_app(app, mode);
    proto::prover_device dev(prog, test_key());
    results[i++] = dev.invoke(chal0(), app.representative_input)
                       .claimed_result;
  }
  EXPECT_EQ(results[0], results[1]) << app.name;
  EXPECT_EQ(results[0], results[2]) << app.name;
}

INSTANTIATE_TEST_SUITE_P(apps, app_equivalence, ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// Fig. 1: control-flow attack on the device
// ---------------------------------------------------------------------------

TEST(fig1_device, benign_dose_respects_safety_check) {
  const auto prog = build_app(fig1_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  const auto rep = dev.invoke(chal0(), fig1_benign(5));
  EXPECT_EQ(rep.claimed_result, 5);
  EXPECT_TRUE(rep.exec);
  // Actuation happened (dose < 10): P3OUT went 1 then 0.
  const auto& h = dev.machine().gpio().history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].value, 1);
}

TEST(fig1_device, benign_overdose_request_blocked_by_check) {
  const auto prog = build_app(fig1_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  const auto rep = dev.invoke(chal0(), fig1_benign(12));
  EXPECT_EQ(rep.claimed_result, 12);
  // dose >= 10: the if-guard blocks actuation entirely.
  EXPECT_TRUE(dev.machine().gpio().history().empty());
}

TEST(fig1_device, attack_actuates_despite_check_with_exec_set) {
  const auto prog = build_app(fig1_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  const auto rep = dev.invoke(chal0(), fig1_attack(prog, 15));
  // The attack injected with dose 15 — actuation happened...
  const auto& h = dev.machine().gpio().history();
  ASSERT_GE(h.size(), 2u);
  EXPECT_EQ(h[0].value, 1);
  // ...and neither APEX nor the code itself noticed anything:
  EXPECT_TRUE(rep.exec);
  EXPECT_EQ(rep.halt_code, emu::HALT_CLEAN);
}

// ---------------------------------------------------------------------------
// Fig. 2: data-only attack on the device
// ---------------------------------------------------------------------------

TEST(fig2_device, benign_update_actuates_port1) {
  const auto prog = build_app(fig2_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  const auto rep = dev.invoke(chal0(), fig2_benign(1, 3));
  EXPECT_EQ(rep.claimed_result, 5);  // default settings dose
  const auto& h = dev.machine().gpio().history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].value, 1);  // actuation via set = 0x1
}

TEST(fig2_device, attack_silently_disables_actuation) {
  const auto prog = build_app(fig2_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  const auto rep = dev.invoke(chal0(), fig2_attack());
  EXPECT_EQ(rep.claimed_result, 5);  // same dose, same control flow
  EXPECT_TRUE(rep.exec);
  const auto& h = dev.machine().gpio().history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].value, 0);  // `set` was clobbered: no injection!
}

TEST(fig2_device, settings_global_is_adjacent_to_set) {
  // The layout property the attack relies on (paper Fig. 2).
  const auto prog = build_app(fig2_app(), instr::instrumentation::dialed);
  const auto s = prog.global_addrs.at("settings");
  const auto set = prog.global_addrs.at("set");
  EXPECT_EQ(set, s + 16);
}

TEST(fig2_cfa_blindspot, cflog_identical_between_benign_and_attack) {
  // The paper's central claim: the Fig. 2 attack changes no control flow,
  // so a CFA-only log cannot distinguish it from a benign run.
  const auto prog = build_app(fig2_app(), instr::instrumentation::tinycfa);
  proto::prover_device dev(prog, test_key());
  // benign(1, 3) keeps the dosage at 5, exactly like the attack does.
  const auto benign = dev.invoke(chal0(), fig2_benign(1, 3));
  const auto attack = dev.invoke(chal0(), fig2_attack());
  EXPECT_EQ(benign.or_bytes, attack.or_bytes);
  EXPECT_TRUE(benign.exec);
  EXPECT_TRUE(attack.exec);
}

TEST(fig2_dfa_distinguishes, ilog_differs_between_benign_and_attack) {
  const auto prog = build_app(fig2_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  const auto benign = dev.invoke(chal0(), fig2_benign(0, 3));
  const auto attack = dev.invoke(chal0(), fig2_attack());
  EXPECT_NE(benign.or_bytes, attack.or_bytes);
}

// ---------------------------------------------------------------------------
// App registry
// ---------------------------------------------------------------------------

TEST(registry, three_evaluation_apps_with_distinct_names) {
  const auto apps = evaluation_apps();
  ASSERT_EQ(apps.size(), 3u);
  EXPECT_EQ(apps[0].name, "SyringePump");
  EXPECT_EQ(apps[1].name, "FireSensor");
  EXPECT_EQ(apps[2].name, "UltrasonicRanger");
  for (const auto& a : apps) {
    EXPECT_EQ(a.entry, "op");
    EXPECT_FALSE(a.source.empty());
  }
}

TEST(registry, all_apps_build_at_all_levels) {
  for (const auto& app : evaluation_apps()) {
    for (const auto mode :
         {instr::instrumentation::none, instr::instrumentation::tinycfa,
          instr::instrumentation::dialed}) {
      const auto prog = build_app(app, mode);
      EXPECT_GT(prog.code_size(), 0u) << app.name;
      EXPECT_EQ(prog.er_min, 0xe000u);
      EXPECT_GT(prog.er_max, prog.er_min);
    }
  }
}

}  // namespace
}  // namespace dialed::apps
