// Replay fast-path differential suite (PR 10): the direct-dispatch replay
// loop and the memoized path must produce verdicts FIELD-IDENTICAL to the
// legacy live-decode loop — over the four evaluation apps, the
// attack/forged/CFA rounds and the wire fuzz corpus — plus the replay
// memo's own LRU/counter semantics and the top-of-address-space
// fail-closed behavior.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "apps/apps.h"
#include "common/error.h"
#include "emu/memmap.h"
#include "fleet/verifier_hub.h"
#include "helpers.h"
#include "proto/wire.h"
#include "verifier/firmware_artifact.h"
#include "verifier/replay_cache.h"

namespace dialed::verifier {
namespace {

namespace fs = std::filesystem;
using fleet::device_registry;
using fleet::verifier_hub;
using test::build_op;

byte_vec master_key() { return byte_vec(32, 0x42); }

/// Pins the process-global dispatch mode for one scope and always
/// restores the fast default.
struct dispatch_guard {
  explicit dispatch_guard(replay_dispatch d) { replay_force_dispatch(d); }
  ~dispatch_guard() { replay_force_dispatch(replay_dispatch::fast); }
};

void expect_verdict_eq(const verdict& a, const verdict& b,
                       const std::string& label) {
  EXPECT_EQ(a.accepted, b.accepted) << label;
  EXPECT_EQ(a.replayed_result, b.replayed_result) << label;
  EXPECT_EQ(a.replay_instructions, b.replay_instructions) << label;
  EXPECT_EQ(a.log_slots_consumed, b.log_slots_consumed) << label;
  EXPECT_EQ(a.log_bytes, b.log_bytes) << label;
  EXPECT_EQ(a.result_tainted, b.result_tainted) << label;
  ASSERT_EQ(a.findings.size(), b.findings.size()) << label;
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].kind, b.findings[i].kind) << label;
    EXPECT_EQ(a.findings[i].detail, b.findings[i].detail) << label;
    EXPECT_EQ(a.findings[i].pc, b.findings[i].pc) << label;
    EXPECT_EQ(a.findings[i].addr, b.findings[i].addr) << label;
  }
  ASSERT_EQ(a.annotated_log.size(), b.annotated_log.size()) << label;
  for (std::size_t i = 0; i < a.annotated_log.size(); ++i) {
    EXPECT_EQ(a.annotated_log[i].slot, b.annotated_log[i].slot) << label;
    EXPECT_EQ(a.annotated_log[i].value, b.annotated_log[i].value) << label;
    EXPECT_EQ(a.annotated_log[i].kind, b.annotated_log[i].kind) << label;
    EXPECT_EQ(a.annotated_log[i].source_pc, b.annotated_log[i].source_pc)
        << label;
  }
  ASSERT_EQ(a.io_trace.size(), b.io_trace.size()) << label;
  for (std::size_t i = 0; i < a.io_trace.size(); ++i) {
    EXPECT_EQ(a.io_trace[i].addr, b.io_trace[i].addr) << label;
    EXPECT_EQ(a.io_trace[i].value, b.io_trace[i].value) << label;
    EXPECT_EQ(a.io_trace[i].pc, b.io_trace[i].pc) << label;
    EXPECT_EQ(a.io_trace[i].tainted, b.io_trace[i].tainted) << label;
  }
}

void expect_result_eq(const fleet::attest_result& a,
                      const fleet::attest_result& b,
                      const std::string& label) {
  EXPECT_EQ(a.error, b.error) << label;
  EXPECT_EQ(a.device, b.device) << label;
  EXPECT_EQ(a.seq, b.seq) << label;
  expect_verdict_eq(a.verdict, b.verdict, label);
}

std::vector<apps::app_spec> four_apps() {
  auto specs = apps::evaluation_apps();  // SyringePump, FireSensor, Ranger
  specs.push_back(apps::door_lock_app());
  return specs;
}

/// Verify one report under every dispatch/memo combination and require
/// field-identical verdicts throughout. Returns the legacy verdict.
verdict expect_all_paths_equal(const firmware_artifact& fw,
                               const attestation_report& rep,
                               const std::array<std::uint8_t, 16>& chal,
                               const std::string& label) {
  const auto ks = crypto::hmac_keystate::derive(test::test_key());
  const std::vector<std::shared_ptr<policy>> no_policies;

  verdict legacy;
  {
    dispatch_guard pin(replay_dispatch::legacy);
    legacy = fw.verify(rep, ks, no_policies, chal);
  }
  const verdict fast = fw.verify(rep, ks, no_policies, chal);
  expect_verdict_eq(legacy, fast, label + "/fast-vs-legacy");

  replay_memo memo(8);
  const verdict miss =
      fw.verify(rep, ks, no_policies, chal, nullptr, &memo);
  const verdict hit =
      fw.verify(rep, ks, no_policies, chal, nullptr, &memo);
  expect_verdict_eq(legacy, miss, label + "/memo-miss-vs-legacy");
  expect_verdict_eq(legacy, hit, label + "/memo-hit-vs-legacy");
  return legacy;
}

// ---------------------------------------------------------------------------
// Differential: legacy vs fast vs memoized
// ---------------------------------------------------------------------------

TEST(dispatch, all_apps_benign_rounds_identical) {
  for (const auto& app : four_apps()) {
    const auto prog =
        apps::build_app(app, instr::instrumentation::dialed);
    proto::prover_device dev(prog, test::test_key());
    std::array<std::uint8_t, 16> chal{};
    chal.fill(0x7e);
    const auto rep = dev.invoke(chal, app.representative_input);
    const auto fw = firmware_artifact::build(prog);
    const auto v = expect_all_paths_equal(*fw, rep, chal, app.name);
    EXPECT_TRUE(v.accepted) << app.name;
  }
}

TEST(dispatch, attack_and_forged_rounds_identical) {
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test::test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto fw = firmware_artifact::build(prog);

  // Fig. 2 data-only attack: the bounds detector's finding must be
  // identical on every path.
  const auto attack = dev.invoke(chal, apps::fig2_attack());
  const auto v_attack = expect_all_paths_equal(*fw, attack, chal, "fig2");
  EXPECT_TRUE(v_attack.has(attack_kind::data_only_attack));

  // Forged claimed result: caught by the replayed-result comparison.
  auto forged = dev.invoke(chal, apps::fig2_benign(1, 3));
  forged.claimed_result = 0xbeef;
  const auto v_forged =
      expect_all_paths_equal(*fw, forged, chal, "fig2-forged");
  EXPECT_TRUE(v_forged.has(attack_kind::result_forged));
}

TEST(dispatch, cfa_rounds_identical) {
  // Tiny-CFA mode never replays (no I-Log), but it must still verify
  // identically regardless of the dispatch pin or an offered memo.
  const auto prog =
      apps::build_app(apps::fig1_app(), instr::instrumentation::tinycfa);
  proto::prover_device dev(prog, test::test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto fw = firmware_artifact::build(prog);

  for (const auto& [label, inv] :
       {std::pair{"benign", apps::fig1_benign(5)},
        std::pair{"attack", apps::fig1_attack(prog, 15)}}) {
    const auto rep = dev.invoke(chal, inv);
    expect_all_paths_equal(*fw, rep, chal, std::string("fig1-") + label);
  }
}

TEST(dispatch, hub_legacy_vs_fast_over_fuzz_corpus) {
  // Two identically-seeded hubs, one pinned to the legacy loop, replay
  // the checked-in wire fuzz corpus plus a valid round; every frame must
  // produce a field-identical attest_result.
  device_registry reg(master_key());
  const auto prog = build_op("int op(int a, int b) { return a + b; }",
                             "op", instr::instrumentation::dialed);
  const auto id = reg.provision(prog);

  fleet::hub_config cfg;
  cfg.sequential_batch = true;
  verifier_hub hub_fast(reg, cfg);
  verifier_hub hub_legacy(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));

  std::vector<std::pair<std::string, byte_vec>> frames;
  // A well-formed accepted round (same nonce on both hubs: same seed).
  {
    const auto grant_f = hub_fast.challenge(id);
    const auto grant_l = hub_legacy.challenge(id);
    ASSERT_EQ(grant_f.nonce, grant_l.nonce);
    proto::invocation inv;
    inv.args[0] = 20;
    inv.args[1] = 22;
    const auto rep = dev.invoke(grant_f.nonce, inv);
    proto::frame_info info;
    info.device_id = id;
    info.seq = grant_f.seq;
    frames.emplace_back("valid-round", proto::encode_frame(info, rep));
  }
  const fs::path dir = DIALED_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(fs::exists(dir)) << dir << " missing";
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() != ".bin") continue;
    std::ifstream in(e.path(), std::ios::binary);
    byte_vec bytes((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
    frames.emplace_back(e.path().filename().string(), std::move(bytes));
  }
  ASSERT_GT(frames.size(), 10u);

  for (const auto& [name, frame] : frames) {
    const auto r_fast = hub_fast.submit(frame);
    fleet::attest_result r_legacy;
    {
      dispatch_guard pin(replay_dispatch::legacy);
      r_legacy = hub_legacy.submit(frame);
    }
    expect_result_eq(r_fast, r_legacy, name);
  }
}

// ---------------------------------------------------------------------------
// Memo semantics
// ---------------------------------------------------------------------------

TEST(memo, counts_hits_misses_and_ignores_the_nonce) {
  const auto prog = build_op("int op(int a, int b) { return a + b; }",
                             "op", instr::instrumentation::dialed);
  const auto fw = firmware_artifact::build(prog);
  proto::prover_device dev(prog, test::test_key());
  const auto ks = crypto::hmac_keystate::derive(test::test_key());
  const std::vector<std::shared_ptr<policy>> no_policies;
  proto::invocation inv;
  inv.args[0] = 3;
  inv.args[1] = 4;

  replay_memo memo(8);
  std::array<std::uint8_t, 16> chal1{};
  chal1.fill(0x11);
  const auto rep1 = dev.invoke(chal1, inv);
  EXPECT_TRUE(
      fw->verify(rep1, ks, no_policies, chal1, nullptr, &memo).accepted);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.entries(), 1u);

  // A fresh round with a DIFFERENT challenge but identical attested
  // inputs: the nonce is deliberately outside the memo key (the MAC —
  // which the hub verifies per report — is what binds it), so this is a
  // hit.
  std::array<std::uint8_t, 16> chal2{};
  chal2.fill(0x22);
  const auto rep2 = dev.invoke(chal2, inv);
  ASSERT_EQ(rep1.or_bytes, rep2.or_bytes);
  EXPECT_TRUE(
      fw->verify(rep2, ks, no_policies, chal2, nullptr, &memo).accepted);
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 1u);

  // Different arguments -> different attested inputs -> miss.
  proto::invocation other;
  other.args[0] = 9;
  other.args[1] = 1;
  const auto rep3 = dev.invoke(chal1, other);
  EXPECT_TRUE(
      fw->verify(rep3, ks, no_policies, chal1, nullptr, &memo).accepted);
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_EQ(memo.entries(), 2u);
}

TEST(memo, lru_eviction_is_bounded) {
  const auto prog = build_op("int op(int a, int b) { return a + b; }",
                             "op", instr::instrumentation::dialed);
  const auto fw = firmware_artifact::build(prog);
  proto::prover_device dev(prog, test::test_key());
  std::array<std::uint8_t, 16> chal{};

  replay_memo memo(2);
  std::vector<attestation_report> reps;
  for (int i = 0; i < 3; ++i) {
    proto::invocation inv;
    inv.args[0] = static_cast<std::uint16_t>(i);
    inv.args[1] = 100;
    reps.push_back(dev.invoke(chal, inv));
  }
  for (const auto& rep : reps) memo.get_or_replay(*fw, rep);
  EXPECT_EQ(memo.entries(), 2u);
  EXPECT_EQ(memo.misses(), 3u);

  // reps[0] was least recently used and is gone; reps[2] still cached.
  memo.get_or_replay(*fw, reps[2]);
  EXPECT_EQ(memo.hits(), 1u);
  memo.get_or_replay(*fw, reps[0]);
  EXPECT_EQ(memo.misses(), 4u);
}

TEST(memo, hub_exposes_counters_and_policies_bypass) {
  device_registry reg(master_key());
  const auto prog = build_op("int op(int a, int b) { return a + b; }",
                             "op", instr::instrumentation::dialed);
  const auto id = reg.provision(prog);
  fleet::hub_config cfg;
  cfg.sequential_batch = true;
  cfg.replay_memo_entries = 64;
  verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));
  proto::invocation inv;
  inv.args[0] = 20;
  inv.args[1] = 22;

  for (int round = 0; round < 3; ++round) {
    const auto grant = hub.challenge(id);
    const auto rep = dev.invoke(grant.nonce, inv);
    proto::frame_info info;
    info.device_id = id;
    info.seq = grant.seq;
    const auto r = hub.submit(proto::encode_frame(info, rep));
    ASSERT_EQ(r.error, proto::proto_error::none);
    EXPECT_TRUE(r.accepted());
  }
  const auto s = hub.stats();
  EXPECT_EQ(s.replay_memo_misses, 1u);
  EXPECT_EQ(s.replay_memo_hits, 2u);
  EXPECT_EQ(s.replay_memo_entries, 1u);

  // With the memo disabled every counter stays zero.
  fleet::hub_config off = cfg;
  off.replay_memo_entries = 0;
  verifier_hub hub_off(reg, off);
  const auto grant = hub_off.challenge(id);
  const auto rep = dev.invoke(grant.nonce, inv);
  proto::frame_info info;
  info.device_id = id;
  info.seq = grant.seq;
  EXPECT_TRUE(hub_off.submit(proto::encode_frame(info, rep)).accepted());
  const auto s_off = hub_off.stats();
  EXPECT_EQ(s_off.replay_memo_hits + s_off.replay_memo_misses +
                s_off.replay_memo_entries,
            0u);
}

// ---------------------------------------------------------------------------
// Top-of-address-space fail-closed behavior
// ---------------------------------------------------------------------------

TEST(wraparound, artifact_rejects_layouts_abutting_top_of_memory) {
  auto prog = build_op("int op(int a, int b) { return a + b; }", "op",
                       instr::instrumentation::dialed);
  auto bad_or = prog;
  bad_or.options.map.or_max = 0xffff;
  EXPECT_THROW(firmware_artifact::build(bad_or), error);

  auto bad_er = prog;
  bad_er.er_max = 0xfffc;
  EXPECT_THROW(firmware_artifact::build(bad_er), error);

  // The unmodified layout builds fine.
  EXPECT_NE(firmware_artifact::build(prog), nullptr);
}

TEST(wraparound, replay_operation_fails_closed_on_wrapping_bounds) {
  const auto prog = build_op("int op(int a, int b) { return a + b; }",
                             "op", instr::instrumentation::dialed);
  const auto fw = firmware_artifact::build(prog);
  proto::prover_device dev(prog, test::test_key());
  std::array<std::uint8_t, 16> chal{};
  proto::invocation inv;
  inv.args[0] = 1;
  inv.args[1] = 2;
  auto rep = dev.invoke(chal, inv);

  rep.or_max = 0xffff;
  const auto r = replay_operation(*fw, rep, {});
  EXPECT_FALSE(r.completed);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, attack_kind::bounds_mismatch);

  rep.or_max = prog.options.map.or_max;
  rep.er_max = 0xfffc;
  const auto r2 = replay_operation(*fw, rep, {});
  EXPECT_FALSE(r2.completed);
  ASSERT_EQ(r2.findings.size(), 1u);
  EXPECT_EQ(r2.findings[0].kind, attack_kind::bounds_mismatch);
}

TEST(wraparound, memmap_in_or_does_not_wrap_empty) {
  emu::memory_map m;
  m.or_min = 0xff00;
  m.or_max = 0xffff;  // rejected by the verifier, but the predicate must
                      // still describe the region truthfully
  EXPECT_TRUE(m.in_or(0xffff));
  EXPECT_TRUE(m.in_or(0xff00));
  EXPECT_FALSE(m.in_or(0xfeff));
  EXPECT_FALSE(m.in_or(0x0000));
}

}  // namespace
}  // namespace dialed::verifier
