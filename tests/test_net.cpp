// The attestation service over real sockets: stream-framer reassembly
// under arbitrary splits, the service control-message codec, HTTP
// parsing, and a loopback integration battery — concurrent clients
// across all four embedded apps, interleaved v2/v2.1 multi-device
// traffic on one connection, delta desync falling back to a full frame
// on the same nonce, slow-reader backpressure, global ingest caps,
// mid-stream disconnects, oversized length prefixes, UDP fire-and-forget
// ingest, /metrics–/healthz scrapes, and a server restart from a durable
// state dir rejecting a pre-crash replay. Run under TSan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <thread>

#include "apps/apps.h"
#include "helpers.h"
#include "net/client.h"
#include "net/framer.h"
#include "net/http_metrics.h"
#include "net/listener.h"
#include "net/server.h"
#include "proto/prover.h"
#include "proto/wire.h"
#include "store/fleet_store.h"

namespace dialed::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr const char* adder = "int op(int a, int b) { return a + b; }";

byte_vec master_key() { return byte_vec(32, 0x42); }

instr::linked_program adder_prog() {
  return test::build_op(adder, "op", instr::instrumentation::dialed);
}

proto::invocation args(std::uint16_t a0, std::uint16_t a1 = 0) {
  proto::invocation inv;
  inv.args[0] = a0;
  inv.args[1] = a1;
  return inv;
}

byte_vec full_frame(fleet::device_id id, std::uint32_t seq,
                    const verifier::attestation_report& rep) {
  proto::frame_info info;
  info.device_id = id;
  info.seq = seq;
  return proto::encode_frame(info, rep);
}

template <typename F>
bool wait_until(F&& f, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (f()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return f();
}

/// Raw blocking loopback socket, optionally with a tiny receive buffer
/// (the slow-reader tests need the kernel to stop absorbing responses).
int raw_connect(std::uint16_t port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa), 0);
  return fd;
}

// ---------------------------------------------------------------------------
// stream_framer: reassembly under arbitrary splits
// ---------------------------------------------------------------------------

TEST(net_framer, reassembles_byte_at_a_time) {
  std::vector<byte_vec> frames;
  byte_vec stream;
  for (std::size_t n : {1u, 7u, 300u}) {
    byte_vec f(n);
    for (std::size_t i = 0; i < n; ++i) {
      f[i] = static_cast<std::uint8_t>(i * 31 + n);
    }
    proto::append_stream_frame(stream, f);
    frames.push_back(std::move(f));
  }

  stream_framer fr;
  std::vector<byte_vec> got;
  byte_vec out;
  for (const auto b : stream) {
    ASSERT_TRUE(fr.feed({&b, 1}));
    while (fr.next(out)) got.push_back(out);
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(got[i], frames[i]);
  }
  EXPECT_EQ(fr.buffered(), 0u);
  EXPECT_EQ(fr.error(), proto::proto_error::none);
}

TEST(net_framer, reassembles_random_chunking) {
  std::mt19937 rng(1234);
  byte_vec stream;
  std::size_t expect = 0;
  for (int i = 0; i < 50; ++i) {
    byte_vec f(1 + rng() % 2000);
    for (auto& b : f) b = static_cast<std::uint8_t>(rng());
    proto::append_stream_frame(stream, f);
    ++expect;
  }
  stream_framer fr;
  byte_vec out;
  std::size_t got = 0, pos = 0;
  while (pos < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng() % 700, stream.size() - pos);
    ASSERT_TRUE(fr.feed({stream.data() + pos, n}));
    pos += n;
    while (fr.next(out)) ++got;
  }
  EXPECT_EQ(got, expect);
  EXPECT_EQ(fr.buffered(), 0u);
}

TEST(net_framer, oversized_prefix_poisons_without_allocating) {
  stream_framer fr;
  byte_vec huge(8, 0xff);  // LE32 0xffffffff, way past the cap
  EXPECT_FALSE(fr.feed(huge));  // rejected the moment the prefix lands
  byte_vec out;
  EXPECT_FALSE(fr.next(out));
  EXPECT_EQ(fr.error(), proto::proto_error::bad_length);
  // Poisoned: nothing further is consumed, and the buffer never grew
  // toward the advertised 4 GiB.
  EXPECT_FALSE(fr.feed(huge));
  EXPECT_EQ(fr.buffered(), 0u);
}

TEST(net_framer, oversized_prefix_mid_stream) {
  byte_vec stream;
  proto::append_stream_frame(stream, byte_vec(10, 0xaa));
  stream.insert(stream.end(), {0xff, 0xff, 0xff, 0x7f});  // bad prefix
  stream_framer fr;
  EXPECT_TRUE(fr.feed(stream));
  byte_vec out;
  EXPECT_TRUE(fr.next(out));  // the good frame before the poison
  EXPECT_EQ(out.size(), 10u);
  EXPECT_FALSE(fr.next(out));
  EXPECT_EQ(fr.error(), proto::proto_error::bad_length);
}

TEST(net_framer, svc_codec_round_trips) {
  const challenge_req cq{0xdeadbeef};
  const auto cq2 = decode_challenge_req(encode_challenge_req(cq));
  ASSERT_TRUE(cq2.has_value());
  EXPECT_EQ(cq2->device_id, cq.device_id);

  challenge_resp cr;
  cr.error = proto::proto_error::unknown_device;
  cr.note = proto::proto_error::challenge_superseded;
  cr.device_id = 7;
  cr.seq = 41;
  for (std::size_t i = 0; i < cr.nonce.size(); ++i) {
    cr.nonce[i] = static_cast<std::uint8_t>(i);
  }
  const auto cr2 = decode_challenge_resp(encode_challenge_resp(cr));
  ASSERT_TRUE(cr2.has_value());
  EXPECT_EQ(cr2->error, cr.error);
  EXPECT_EQ(cr2->note, cr.note);
  EXPECT_EQ(cr2->device_id, cr.device_id);
  EXPECT_EQ(cr2->seq, cr.seq);
  EXPECT_EQ(cr2->nonce, cr.nonce);

  attest_resp ar;
  ar.error = proto::proto_error::replayed_report;
  ar.accepted = false;
  ar.device_id = 9;
  ar.seq = 3;
  const auto ar2 = decode_attest_resp(encode_attest_resp(ar));
  ASSERT_TRUE(ar2.has_value());
  EXPECT_EQ(ar2->error, ar.error);
  EXPECT_EQ(ar2->accepted, ar.accepted);
  EXPECT_EQ(ar2->device_id, ar.device_id);
  EXPECT_EQ(ar2->seq, ar.seq);

  // Cross-type and truncated decodes fail closed.
  EXPECT_FALSE(decode_attest_resp(encode_challenge_req(cq)).has_value());
  EXPECT_FALSE(decode_challenge_resp(encode_attest_resp(ar)).has_value());
  auto bytes = encode_challenge_resp(cr);
  bytes.pop_back();
  EXPECT_FALSE(decode_challenge_resp(bytes).has_value());
  EXPECT_TRUE(is_svc_message(encode_challenge_req(cq)));
}

// ---------------------------------------------------------------------------
// HTTP request parsing
// ---------------------------------------------------------------------------

TEST(net_http, parses_request_line) {
  const std::string raw = "GET /metrics?x=1 HTTP/1.1\r\nHost: h\r\n\r\n";
  const auto req = parse_http_request(
      {reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()},
      8192);
  EXPECT_TRUE(req.complete);
  EXPECT_FALSE(req.malformed);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");  // query string stripped
}

TEST(net_http, incomplete_and_oversized) {
  const std::string partial = "GET /metrics HTTP/1.1\r\nHost:";
  auto req = parse_http_request(
      {reinterpret_cast<const std::uint8_t*>(partial.data()),
       partial.size()},
      8192);
  EXPECT_FALSE(req.complete);
  EXPECT_FALSE(req.too_large);

  const std::string big = "GET /" + std::string(10000, 'a');
  req = parse_http_request(
      {reinterpret_cast<const std::uint8_t*>(big.data()), big.size()},
      8192);
  EXPECT_FALSE(req.complete);
  EXPECT_TRUE(req.too_large);

  const std::string bad = "NONSENSE\r\n\r\n";
  req = parse_http_request(
      {reinterpret_cast<const std::uint8_t*>(bad.data()), bad.size()},
      8192);
  EXPECT_TRUE(req.complete);
  EXPECT_TRUE(req.malformed);
}

// ---------------------------------------------------------------------------
// Loopback integration
// ---------------------------------------------------------------------------

/// Registry + hub + running attest_server on ephemeral loopback ports.
struct harness {
  explicit harness(server_config cfg = {}, std::uint32_t hub_workers = 1)
      : registry(master_key()) {
    fleet::hub_config hc;
    hc.workers = hub_workers;
    hc.max_outstanding = 256;
    hub.emplace(registry, hc);
    cfg.bind_addr = "127.0.0.1";
    cfg.tcp_port = 0;
    cfg.udp_port = 0;
    server.emplace(*hub, cfg);
    server->start();
  }
  ~harness() {
    if (server) server->stop();
  }

  fleet::device_id provision(const instr::linked_program& prog) {
    return registry.provision(prog);
  }

  byte_vec key(fleet::device_id id) { return registry.find(id)->key; }
  std::uint16_t port() const { return server->tcp_port(); }

  fleet::device_registry registry;
  std::optional<fleet::verifier_hub> hub;
  std::optional<attest_server> server;
};

TEST(net_serve, challenge_and_attest_over_tcp) {
  harness h;
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));

  attest_client client("127.0.0.1", h.port());
  const auto grant = client.get_challenge(id);
  ASSERT_EQ(grant.error, proto::proto_error::none);
  EXPECT_EQ(grant.device_id, id);

  const auto rep = dev.invoke(grant.nonce, args(20, 22));
  EXPECT_EQ(rep.claimed_result, 42);
  const auto res = client.submit_report(full_frame(id, grant.seq, rep));
  EXPECT_EQ(res.error, proto::proto_error::none);
  EXPECT_TRUE(res.accepted);
  EXPECT_EQ(res.device_id, id);
  EXPECT_EQ(res.seq, grant.seq);

  const auto st = h.server->stats();
  EXPECT_EQ(st.challenge_reqs, 1u);
  EXPECT_EQ(st.tcp_frames, 1u);
  EXPECT_EQ(st.responses_sent, 2u);
  EXPECT_EQ(h.hub->stats().reports_accepted, 1u);
}

TEST(net_serve, unknown_device_gets_typed_challenge_error) {
  harness h;
  attest_client client("127.0.0.1", h.port());
  const auto grant = client.get_challenge(999);
  EXPECT_EQ(grant.error, proto::proto_error::unknown_device);
}

// All four embedded apps attesting concurrently through one server —
// the multi-client, multi-firmware routing test (TSan target).
TEST(net_serve, four_apps_concurrent_clients) {
  harness h;
  struct client_plan {
    fleet::device_id id;
    instr::linked_program prog;
    proto::invocation inv;
  };
  std::vector<client_plan> plans;
  for (auto& app : apps::evaluation_apps()) {
    auto prog = apps::build_app(app, instr::instrumentation::dialed);
    const auto id = h.provision(prog);
    plans.push_back({id, std::move(prog), app.representative_input});
  }
  {
    const auto app = apps::door_lock_app();
    auto prog = apps::build_app(app, instr::instrumentation::dialed);
    const auto id = h.provision(prog);
    plans.push_back({id, std::move(prog), app.representative_input});
  }
  ASSERT_EQ(plans.size(), 4u);

  constexpr int rounds = 5;
  std::vector<std::thread> threads;
  std::atomic<int> accepted{0};
  for (const auto& plan : plans) {
    threads.emplace_back([&h, &plan, &accepted] {
      proto::prover_device dev(plan.prog, h.key(plan.id));
      attest_client client("127.0.0.1", h.port());
      for (int k = 0; k < rounds; ++k) {
        const auto grant = client.get_challenge(plan.id);
        ASSERT_EQ(grant.error, proto::proto_error::none);
        const auto rep = dev.invoke(grant.nonce, plan.inv);
        const auto res =
            client.submit_report(full_frame(plan.id, grant.seq, rep));
        EXPECT_EQ(res.device_id, plan.id);
        if (res.accepted) accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(accepted.load(), 4 * rounds);
  EXPECT_EQ(h.hub->stats().reports_accepted,
            static_cast<std::uint64_t>(4 * rounds));
}

// One connection carrying interleaved traffic for two devices — device A
// speaking wire v2.1 deltas, device B full v2 frames — with pipelined
// submissions completed by the server's batching in whatever order;
// responses are matched by (device, seq).
TEST(net_serve, interleaved_v2_v21_multi_device_pipelined) {
  harness h;
  const auto prog = adder_prog();
  const auto a = h.provision(prog);
  const auto b = h.provision(prog);
  proto::prover_device dev_a(prog, h.key(a));
  proto::prover_device dev_b(prog, h.key(b));
  proto::delta_emitter emitter;

  attest_client client("127.0.0.1", h.port());
  constexpr int rounds = 4;
  for (int k = 0; k < rounds; ++k) {
    const auto ga = client.get_challenge(a);
    const auto gb = client.get_challenge(b);
    ASSERT_EQ(ga.error, proto::proto_error::none);
    ASSERT_EQ(gb.error, proto::proto_error::none);
    const auto rep_a = dev_a.invoke(ga.nonce, args(1, k));
    const auto rep_b = dev_b.invoke(gb.nonce, args(2, k));

    // v2.1 (or first-round full) for A, always-full v2 for B, pipelined.
    const auto frame_a = emitter.encode(a, ga.seq, rep_a);
    client.send_report(frame_a);
    client.send_report(full_frame(b, gb.seq, rep_b));
    if (k > 0) {
      EXPECT_EQ(frame_a[2], proto::wire_v21);  // deltas after round 0
    }

    std::map<fleet::device_id, attest_resp> by_dev;
    for (int i = 0; i < 2; ++i) {
      const auto r = client.recv_result();
      by_dev[r.device_id] = r;
    }
    ASSERT_TRUE(by_dev.count(a));
    ASSERT_TRUE(by_dev.count(b));
    EXPECT_TRUE(by_dev[a].accepted);
    EXPECT_TRUE(by_dev[b].accepted);
    EXPECT_EQ(by_dev[a].seq, ga.seq);
    EXPECT_EQ(by_dev[b].seq, gb.seq);
    emitter.note_result(a, ga.seq, rep_a, by_dev[a].error,
                        by_dev[a].accepted);
  }
  EXPECT_EQ(h.hub->stats().reports_accepted,
            static_cast<std::uint64_t>(2 * rounds));
}

// Delta desync over a real socket: the client believes a baseline exists
// that the server never accepted, so its delta is answered
// baseline_mismatch — and the SAME challenge then accepts a full frame
// (the nonce survives the mismatch by design).
TEST(net_serve, delta_desync_falls_back_to_full_frame_same_nonce) {
  harness h;
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));
  attest_client client("127.0.0.1", h.port());
  proto::delta_emitter emitter;

  // Fabricate the desync: round 1 is encoded and marked accepted in the
  // emitter's mirror but never reaches the server.
  const auto g1 = client.get_challenge(id);
  const auto rep1 = dev.invoke(g1.nonce, args(5, 6));
  (void)emitter.encode(id, g1.seq, rep1);
  emitter.note_result(id, g1.seq, rep1, proto::proto_error::none, true);

  const auto g2 = client.get_challenge(id);
  const auto rep2 = dev.invoke(g2.nonce, args(7, 8));
  auto frame = emitter.encode(id, g2.seq, rep2);
  ASSERT_EQ(frame[2], proto::wire_v21);  // really a delta
  auto res = client.submit_report(frame);
  EXPECT_EQ(res.error, proto::proto_error::baseline_mismatch);
  EXPECT_FALSE(res.accepted);

  // Fall back to a full frame on the same still-alive nonce.
  emitter.note_result(id, g2.seq, rep2, res.error, false);
  frame = emitter.encode(id, g2.seq, rep2);
  ASSERT_EQ(frame[2], proto::wire_v2);
  res = client.submit_report(frame);
  EXPECT_EQ(res.error, proto::proto_error::none);
  EXPECT_TRUE(res.accepted);
  EXPECT_EQ(res.seq, g2.seq);
}

// A peer that stops draining responses gets its reads paused at the
// write high-water mark, and everything still completes once it drains.
TEST(net_serve, slow_reader_backpressure_pauses_then_recovers) {
  server_config cfg;
  cfg.limits.write_high_water = 2048;
  cfg.limits.write_low_water = 512;
  cfg.limits.write_stall_ms = 0;  // never kill the slow reader here
  cfg.limits.sndbuf = 4096;  // keep the kernel from absorbing the queue
  harness h(cfg);
  const auto id = h.provision(adder_prog());

  constexpr std::size_t n = 4000;
  byte_vec burst;
  for (std::size_t i = 0; i < n; ++i) {
    proto::append_stream_frame(burst, encode_challenge_req({id}));
  }
  const int fd = raw_connect(h.port(), /*rcvbuf=*/2048);
  write_all(fd, burst);

  // Pause counters live on the connection and fold into server stats on
  // sweeps and scrapes; with sweeps off here, scrape to observe them.
  ASSERT_TRUE(wait_until([&] {
    (void)http_get("127.0.0.1", h.port(), "/metrics");
    return h.server->stats().backpressure_pauses > 0;
  }));

  // Drain: every single response must arrive despite the pauses.
  stream_framer fr;
  byte_vec frame;
  std::size_t got = 0;
  std::uint8_t buf[4096];
  while (got < n) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(r, 0);
    ASSERT_TRUE(fr.feed({buf, static_cast<std::size_t>(r)}));
    while (fr.next(frame)) {
      ASSERT_TRUE(decode_challenge_resp(frame).has_value());
      ++got;
    }
  }
  EXPECT_EQ(got, n);
  ::close(fd);
}

// A peer whose write queue makes no progress for write_stall_ms is dead:
// the server closes it instead of buffering forever.
TEST(net_serve, write_stalled_connection_is_closed) {
  server_config cfg;
  cfg.limits.write_high_water = 1 << 20;  // don't pause, stall instead
  cfg.limits.write_stall_ms = 200;
  cfg.limits.sndbuf = 4096;
  cfg.sweep_interval_ms = 50;
  harness h(cfg);
  const auto id = h.provision(adder_prog());

  byte_vec burst;
  for (std::size_t i = 0; i < 4000; ++i) {
    proto::append_stream_frame(burst, encode_challenge_req({id}));
  }
  const int fd = raw_connect(h.port(), /*rcvbuf=*/2048);
  write_all(fd, burst);
  EXPECT_TRUE(wait_until(
      [&] { return h.server->stats().closed_stalled > 0; }));
  EXPECT_TRUE(
      wait_until([&] { return h.server->stats().connections_open == 0; }));
  ::close(fd);
}

// Global ingest cap: a pipelined burst past max_pending_frames pauses
// reads (bounded memory) and still verifies every frame.
TEST(net_serve, global_backlog_cap_pauses_ingest) {
  server_config cfg;
  cfg.max_pending_frames = 4;
  cfg.batching.batch_max = 2;
  harness h(cfg);
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));
  attest_client client("127.0.0.1", h.port());

  // Phase 1: gather all challenges and reports (nothing pipelined yet —
  // interleaving report results into get_challenge replies would desync
  // the sequential client).
  constexpr int n = 32;
  std::vector<byte_vec> frames;
  for (int k = 0; k < n; ++k) {
    const auto grant = client.get_challenge(id);
    ASSERT_EQ(grant.error, proto::proto_error::none);
    const auto rep = dev.invoke(grant.nonce, args(k, 1));
    frames.push_back(full_frame(id, grant.seq, rep));
  }
  // Phase 2: fire the whole burst, then collect every result.
  for (const auto& f : frames) client.send_report(f);
  std::set<std::uint32_t> seen;
  for (int k = 0; k < n; ++k) {
    const auto r = client.recv_result();
    EXPECT_TRUE(r.accepted);
    seen.insert(r.seq);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  (void)http_get("127.0.0.1", h.port(), "/metrics");  // fold pauses
  EXPECT_GT(h.server->stats().backpressure_pauses, 0u);
}

TEST(net_serve, mid_stream_disconnect_cleans_up) {
  harness h;
  const int fd = raw_connect(h.port());
  // A length prefix promising 100 bytes, then only 10, then gone.
  byte_vec torn = {100, 0, 0, 0};
  torn.resize(14, 0xab);
  write_all(fd, torn);
  ASSERT_TRUE(wait_until(
      [&] { return h.server->stats().connections_accepted == 1; }));
  ::close(fd);
  EXPECT_TRUE(
      wait_until([&] { return h.server->stats().connections_open == 0; }));
  EXPECT_EQ(h.server->stats().framing_errors, 0u);  // EOF, not an attack
}

TEST(net_serve, oversized_length_prefix_drops_connection) {
  harness h;
  const int fd = raw_connect(h.port());
  const byte_vec evil = {0xff, 0xff, 0xff, 0x7f, 0x00, 0x00};
  write_all(fd, evil);
  EXPECT_TRUE(
      wait_until([&] { return h.server->stats().framing_errors == 1; }));
  // The server hangs up; the client sees EOF, never a 2 GiB allocation.
  std::uint8_t buf[64];
  EXPECT_EQ(::recv(fd, buf, sizeof buf, 0), 0);
  ::close(fd);
}

TEST(net_serve, udp_fire_and_forget_ingest) {
  harness h;
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));

  // Challenge over TCP, report over UDP — no response expected.
  attest_client client("127.0.0.1", h.port());
  const auto grant = client.get_challenge(id);
  ASSERT_EQ(grant.error, proto::proto_error::none);
  const auto rep = dev.invoke(grant.nonce, args(3, 4));
  const auto frame = full_frame(id, grant.seq, rep);

  const int ufd = udp_socket();
  send_udp_to(ufd, "127.0.0.1", h.server->udp_port(), frame);
  EXPECT_TRUE(
      wait_until([&] { return h.hub->stats().reports_accepted == 1; }));
  EXPECT_TRUE(
      wait_until([&] { return h.server->stats().udp_datagrams == 1; }));
  ::close(ufd);
}

TEST(net_serve, http_metrics_and_healthz_reflect_traffic) {
  harness h;
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));
  attest_client client("127.0.0.1", h.port());
  const auto grant = client.get_challenge(id);
  const auto rep = dev.invoke(grant.nonce, args(40, 2));
  ASSERT_TRUE(client.submit_report(full_frame(id, grant.seq, rep)).accepted);

  const auto metrics = http_get("127.0.0.1", h.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("dialed_hub_reports_accepted_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("dialed_hub_challenges_issued_total 1"),
            std::string::npos);
  EXPECT_NE(
      metrics.find("dialed_net_frames_total{transport=\"tcp\"} 1"),
      std::string::npos);
  EXPECT_NE(metrics.find("dialed_net_batch_size_count"),
            std::string::npos);
  EXPECT_NE(metrics.find("dialed_hub_device_reports_total"),
            std::string::npos);

  const auto health = http_get("127.0.0.1", h.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"hub\": \"ok\""), std::string::npos);

  EXPECT_NE(http_get("127.0.0.1", h.port(), "/nope")
                .find("HTTP/1.1 404"),
            std::string::npos);

  // Non-GET methods are refused; oversized headers answered 431.
  {
    const int fd = raw_connect(h.port());
    const std::string post = "POST /metrics HTTP/1.1\r\n\r\n";
    write_all(fd, {reinterpret_cast<const std::uint8_t*>(post.data()),
                   post.size()});
    std::string resp;
    char buf[1024];
    ssize_t r;
    while ((r = ::recv(fd, buf, sizeof buf, 0)) > 0) {
      resp.append(buf, static_cast<std::size_t>(r));
    }
    EXPECT_NE(resp.find("HTTP/1.1 405"), std::string::npos);
    ::close(fd);
  }
  {
    const int fd = raw_connect(h.port());
    const std::string big = "GET /" + std::string(10000, 'a');
    write_all(fd, {reinterpret_cast<const std::uint8_t*>(big.data()),
                   big.size()});
    std::string resp;
    char buf[1024];
    ssize_t r;
    while ((r = ::recv(fd, buf, sizeof buf, 0)) > 0) {
      resp.append(buf, static_cast<std::size_t>(r));
    }
    EXPECT_NE(resp.find("HTTP/1.1 431"), std::string::npos);
    ::close(fd);
  }
}

// Crash-durability across the wire: a server restarted from its state
// dir classifies a pre-crash report as a replay, over a real socket.
TEST(net_serve, restart_from_state_dir_rejects_pre_crash_replay) {
  const auto dir = fs::path(::testing::TempDir()) / "dialed-net-restart";
  fs::remove_all(dir);

  const auto prog = adder_prog();
  byte_vec frame;
  {
    store::fleet_store::options so;
    so.master_key = master_key();
    so.hub.workers = 1;
    auto state = store::fleet_store::open(dir.string(), so);
    const auto id = state.registry->provision(prog);
    proto::prover_device dev(prog, state.registry->find(id)->key);

    server_config cfg;
    cfg.bind_addr = "127.0.0.1";
    attest_server server(*state.hub, cfg, {state.store.get()});
    server.start();

    attest_client client("127.0.0.1", server.tcp_port());
    const auto grant = client.get_challenge(id);
    ASSERT_EQ(grant.error, proto::proto_error::none);
    const auto rep = dev.invoke(grant.nonce, args(10, 11));
    frame = full_frame(id, grant.seq, rep);
    const auto res = client.submit_report(frame);
    ASSERT_TRUE(res.accepted);

    const auto health =
        http_get("127.0.0.1", server.tcp_port(), "/healthz");
    EXPECT_NE(health.find("\"store\": \"ok\""), std::string::npos);
    server.stop();
    // fleet_state goes out of scope: the "crash" (WAL is already on
    // disk; nothing depends on a clean shutdown path).
  }
  {
    store::fleet_store::options so;
    so.master_key = master_key();
    so.hub.workers = 1;
    auto state = store::fleet_store::open(dir.string(), so);
    server_config cfg;
    cfg.bind_addr = "127.0.0.1";
    attest_server server(*state.hub, cfg, {state.store.get()});
    server.start();

    attest_client client("127.0.0.1", server.tcp_port());
    const auto res = client.submit_report(frame);
    EXPECT_EQ(res.error, proto::proto_error::replayed_report);
    EXPECT_FALSE(res.accepted);
    server.stop();
  }
  fs::remove_all(dir);
}

// The server survives its clients vanishing mid-verification: results
// whose connection is gone are counted and dropped, never delivered to
// an aliased fd. A valid report and a poisoned prefix in ONE burst make
// the race deterministic — the close is requested in the same reactor
// dispatch that enqueued the frame, so its result can only be dropped.
TEST(net_serve, close_before_result_drops_the_result) {
  harness h;
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));

  attest_client client("127.0.0.1", h.port());
  const auto grant = client.get_challenge(id);
  ASSERT_EQ(grant.error, proto::proto_error::none);
  const auto rep = dev.invoke(grant.nonce, args(1, 2));

  byte_vec burst;
  proto::append_stream_frame(burst, full_frame(id, grant.seq, rep));
  burst.insert(burst.end(), {0xff, 0xff, 0xff, 0x7f});  // poison
  write_all(client.fd(), burst);

  EXPECT_TRUE(wait_until([&] {
    return h.server->stats().framing_errors == 1 &&
           h.server->stats().dropped_conn_gone == 1 &&
           h.hub->stats().reports_accepted == 1;
  }));
  EXPECT_TRUE(
      wait_until([&] { return h.server->stats().connections_open == 0; }));

  // The service itself is unharmed: a fresh client still attests.
  attest_client again("127.0.0.1", h.port());
  const auto g2 = again.get_challenge(id);
  ASSERT_EQ(g2.error, proto::proto_error::none);
  const auto rep2 = dev.invoke(g2.nonce, args(3, 4));
  EXPECT_TRUE(again.submit_report(full_frame(id, g2.seq, rep2)).accepted);
}

// Every blocking client call is deadlined: a server that accepts the
// connection into its backlog and then never serves it must produce the
// typed net::timeout_error in bounded time, on both the attestation
// stream and the HTTP scrape path — `dialed-attest --connect` can wedge
// on neither.
TEST(net_client, blocking_calls_time_out_against_a_wedged_server) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(lfd, 8), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  const auto t0 = std::chrono::steady_clock::now();
  // The kernel completes the handshake from the backlog, so connect
  // succeeds; the request then starves.
  attest_client client("127.0.0.1", port, /*timeout_ms=*/200);
  try {
    (void)client.get_challenge(1);
    FAIL() << "wedged server answered?";
  } catch (const timeout_error&) {
  }
  EXPECT_THROW((void)http_get("127.0.0.1", port, "/metrics", 200),
               timeout_error);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 200);    // the deadline is real, not an EOF
  EXPECT_LT(elapsed, 10000);  // and bounded, not a hang
  ::close(lfd);
}


// ---------------------------------------------------------------------------
// PR 9 observability: response hygiene, stage histograms, flight
// recorder endpoint, standby-aware health, scrape-under-traffic (TSan)
// ---------------------------------------------------------------------------

TEST(net_http, head_allow_and_body_strip) {
  const auto full =
      render_http_response(405, "text/plain", "method not allowed\n",
                           "Allow: GET, HEAD\r\n");
  EXPECT_NE(full.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_NE(full.find("Allow: GET, HEAD\r\n"), std::string::npos);
  const auto head = strip_http_body(full);
  // Headers survive byte-for-byte (Content-Length still names the GET
  // body size); the body is gone.
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
  EXPECT_EQ(head, full.substr(0, head.size()));
  EXPECT_NE(head.find("Content-Length: 19\r\n"), std::string::npos);
  EXPECT_EQ(head.find("method not allowed"), std::string::npos);
}

TEST(net_http, traces_body_renders_json) {
  obs::trace_dump d;
  d.slowest_ns = 5000;
  d.slow_recorded = 1;
  d.rejected_recorded = 1;
  obs::span_trace t;
  t.trace_id = 7;
  t.total_ns = 5000;
  t.stage_ns[static_cast<std::size_t>(obs::stage::mac)] = 1200;
  t.device = 42;
  t.seq = 3;
  t.partition = 1;
  t.accepted = true;
  d.slow.push_back(t);
  t.accepted = false;
  t.error =
      static_cast<std::uint8_t>(proto::proto_error::replayed_report);
  d.rejected.push_back(t);

  const auto body = render_traces_body(d);
  EXPECT_NE(body.find("\"slowest_ns\": 5000"), std::string::npos);
  EXPECT_NE(body.find("\"trace_id\": 7"), std::string::npos);
  EXPECT_NE(body.find("\"device\": 42"), std::string::npos);
  EXPECT_NE(body.find("\"partition\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"mac\": 1200"), std::string::npos);
  EXPECT_NE(body.find("\"error\": \"replayed_report\""),
            std::string::npos);
  EXPECT_NE(body.find("\"accepted\": true"), std::string::npos);
  EXPECT_NE(body.find("\"accepted\": false"), std::string::npos);
}

TEST(net_http, healthz_body_partitions_and_degraded) {
  std::vector<partition_health> parts(2);
  parts[0].has_store = true;
  parts[0].generation = 3;
  parts[0].wal_records = 10;
  parts[0].has_standby = true;
  parts[0].standby_synced = true;
  parts[1].has_store = true;
  parts[1].generation = 5;
  parts[1].wal_records = 7;
  parts[1].has_standby = true;
  parts[1].ship_lag_records = 4;
  parts[1].ship_desync = true;

  const auto body = render_healthz_body(parts);
  // Legacy aggregates survive for existing probes...
  EXPECT_NE(body.find("\"hub\": \"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"wal_records\": 17"), std::string::npos);
  EXPECT_NE(body.find("\"generation\": 5"), std::string::npos);
  // ...and the desync degrades the overall status plus its partition.
  EXPECT_NE(body.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(body.find("\"partition\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"lag_records\": 4"), std::string::npos);
  EXPECT_NE(body.find("\"desync\": true"), std::string::npos);

  std::vector<partition_health> healthy(1);
  healthy[0].has_store = true;
  const auto ok = render_healthz_body(healthy);
  EXPECT_NE(ok.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(ok.find("\"store\": \"ok\""), std::string::npos);
}

/// Value of the first sample whose line starts with `prefix`.
std::uint64_t metric_value(const std::string& body,
                           const std::string& prefix) {
  const auto pos = body.find(prefix);
  EXPECT_NE(pos, std::string::npos) << prefix;
  if (pos == std::string::npos) return 0;
  const auto eol = body.find('\n', pos);
  const auto sp = body.rfind(' ', eol);
  return std::stoull(body.substr(sp + 1, eol - sp - 1));
}

TEST(net_serve, stage_histograms_and_build_info_in_metrics) {
  harness h;
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));
  attest_client client("127.0.0.1", h.port());
  const auto grant = client.get_challenge(id);
  const auto rep = dev.invoke(grant.nonce, args(40, 2));
  ASSERT_TRUE(client.submit_report(full_frame(id, grant.seq, rep)).accepted);

  const auto metrics = http_get("127.0.0.1", h.port(), "/metrics");
  // One histogram per stage, partition-labeled (a bare hub is
  // partition "0"); the accepted report moved every stage's count.
  for (const char* stage :
       {"decode", "journal", "mac", "replay", "verdict"}) {
    const std::string count =
        std::string("dialed_stage_latency_seconds_count{stage=\"") +
        stage + "\",partition=\"0\"}";
    EXPECT_EQ(metric_value(metrics, count), 1u) << stage;
  }
  EXPECT_NE(metrics.find("dialed_stage_latency_seconds_bucket{"
                         "stage=\"replay\",partition=\"0\",le=\"+Inf\"} 1"),
            std::string::npos);
  // Batcher attribution: one flush, by cause, and its queue wait.
  std::uint64_t flushes = 0;
  for (const char* cause : {"size", "deadline", "idle"}) {
    flushes += metric_value(
        metrics, std::string("dialed_net_batch_flush_total{cause=\"") +
                     cause + "\"}");
  }
  EXPECT_GE(flushes, 1u);
  EXPECT_GE(metric_value(metrics, "dialed_net_queue_wait_seconds_count"),
            1u);
  // Build identity.
  EXPECT_NE(metrics.find("dialed_build_info{version=\""),
            std::string::npos);
  EXPECT_NE(metrics.find("sha256_backend=\""), std::string::npos);
}

TEST(net_serve, debug_traces_endpoint_reports_rejections) {
  harness h;
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));
  attest_client client("127.0.0.1", h.port());
  const auto grant = client.get_challenge(id);
  const auto rep = dev.invoke(grant.nonce, args(1, 2));
  const auto frame = full_frame(id, grant.seq, rep);
  ASSERT_TRUE(client.submit_report(frame).accepted);
  // The same frame again is a replay: rejected, so flight-recorded.
  EXPECT_EQ(client.submit_report(frame).error,
            proto::proto_error::replayed_report);

  const auto resp = http_get("127.0.0.1", h.port(), "/debug/traces");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"rejected\": [{"), std::string::npos);
  EXPECT_NE(resp.find("\"error\": \"replayed_report\""),
            std::string::npos);
  EXPECT_NE(resp.find("\"device\": " + std::to_string(id)),
            std::string::npos);
  // The accepted report is the slowest seen: it is in the slow ring.
  EXPECT_NE(resp.find("\"slow\": [{"), std::string::npos);
}

TEST(net_serve, head_is_get_without_a_body) {
  harness h;
  const int fd = raw_connect(h.port());
  const std::string head = "HEAD /healthz HTTP/1.1\r\n\r\n";
  write_all(fd, {reinterpret_cast<const std::uint8_t*>(head.data()),
                 head.size()});
  std::string resp;
  char buf[1024];
  ssize_t r;
  while ((r = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length:"), std::string::npos);
  // The response ends at the header terminator: no body bytes follow.
  EXPECT_EQ(resp.substr(resp.size() - 4), "\r\n\r\n");
  EXPECT_EQ(resp.find("\"hub\""), std::string::npos);
}

TEST(net_serve, unsupported_method_names_the_allowed_ones) {
  harness h;
  const int fd = raw_connect(h.port());
  const std::string del = "DELETE /metrics HTTP/1.1\r\n\r\n";
  write_all(fd, {reinterpret_cast<const std::uint8_t*>(del.data()),
                 del.size()});
  std::string resp;
  char buf[1024];
  ssize_t r;
  while ((r = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_NE(resp.find("Allow: GET, HEAD"), std::string::npos);
}

// A standby follower behind a shipper surfaces on both endpoints; a
// desynced one flips /healthz to 503. Uses the store-backed server
// wiring exactly as dialed-serve --standby-dir does.
TEST(net_serve, healthz_standby_depth_and_desync_503) {
  const auto dir = fs::path(::testing::TempDir()) / "dialed-net-standby";
  fs::remove_all(dir);
  const auto prog = adder_prog();

  store::fleet_store::options so;
  so.master_key = master_key();
  so.hub.workers = 1;
  auto state = store::fleet_store::open((dir / "primary").string(), so);
  const auto id = state.registry->provision(prog);
  proto::prover_device dev(prog, state.registry->find(id)->key);

  store::wal_follower follower((dir / "standby").string());
  store::wal_shipper shipper;
  shipper.add_follower(&follower);
  state.store->attach_shipper(&shipper);

  server_config cfg;
  cfg.bind_addr = "127.0.0.1";
  attest_server server(*state.hub, cfg, {state.store.get()}, {&shipper});
  server.start();

  attest_client client("127.0.0.1", server.tcp_port());
  const auto grant = client.get_challenge(id);
  const auto rep = dev.invoke(grant.nonce, args(5, 6));
  ASSERT_TRUE(
      client.submit_report(full_frame(id, grant.seq, rep)).accepted);

  const auto port = server.tcp_port();
  auto health = http_get("127.0.0.1", port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"standby\": {\"synced\": true"),
            std::string::npos);
  const auto metrics = http_get("127.0.0.1", port, "/metrics");
  EXPECT_GE(metric_value(metrics,
                         "dialed_ship_records_total{partition=\"0\"}"),
            1u);
  EXPECT_EQ(metric_value(metrics,
                         "dialed_ship_desync{partition=\"0\"}"),
            0u);

  // Poison the stream the way a genuine desync looks to the follower: a
  // record for a generation it is not following.
  follower.on_record(/*generation=*/999, byte_vec{1, 2, 3});
  health = http_get("127.0.0.1", port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(health.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(health.find("\"desync\": true"), std::string::npos);

  server.stop();
  state.store->attach_shipper(nullptr);
}

/// Every non-comment line of a Prometheus body is `name{labels} value`.
void expect_prometheus_parses(const std::string& response) {
  const auto body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::size_t at = body_at + 4;
  while (at < response.size()) {
    auto eol = response.find('\n', at);
    if (eol == std::string::npos) eol = response.size();
    const std::string line = response.substr(at, eol - at);
    at = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_NE(sp, 0u) << line;
    const std::string value = line.substr(sp + 1);
    EXPECT_FALSE(value.empty()) << line;
    std::size_t used = 0;
    (void)std::stod(value, &used);
    EXPECT_EQ(used, value.size()) << line;
  }
}

// Scrapes racing live traffic: every body parses, and the stage
// histogram totals never move backwards. This is a TSan target — it
// pits the reactor's scrape path against the hub's recording path.
TEST(net_serve, concurrent_scrape_under_traffic) {
  harness h(server_config{}, /*hub_workers=*/2);
  const auto prog = adder_prog();
  const auto id = h.provision(prog);
  proto::prover_device dev(prog, h.key(id));

  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    attest_client client("127.0.0.1", h.port());
    while (!stop.load(std::memory_order_relaxed)) {
      const auto grant = client.get_challenge(id);
      if (grant.error != proto::proto_error::none) continue;
      const auto rep = dev.invoke(grant.nonce, args(9, 9));
      const auto frame = full_frame(id, grant.seq, rep);
      (void)client.submit_report(frame);
      (void)client.submit_report(frame);  // replay: keeps rejects flowing
    }
  });

  std::uint64_t last_total = 0;
  for (int i = 0; i < 20; ++i) {
    const auto metrics = http_get("127.0.0.1", h.port(), "/metrics");
    expect_prometheus_parses(metrics);
    std::uint64_t total = 0;
    for (const char* stage :
         {"decode", "journal", "mac", "replay", "verdict"}) {
      total += metric_value(
          metrics,
          std::string("dialed_stage_latency_seconds_count{stage=\"") +
              stage + "\",partition=\"0\"}");
    }
    EXPECT_GE(total, last_total);
    last_total = total;
    const auto traces = http_get("127.0.0.1", h.port(), "/debug/traces");
    EXPECT_NE(traces.find("\"slowest_ns\":"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  traffic.join();
  EXPECT_GT(last_total, 0u);
}

}  // namespace
}  // namespace dialed::net
