// Firmware catalog + artifact layer: content-addressed interning, shared
// per-firmware verifier state, and the byte-equivalence guarantee — the
// shared-artifact/reused-machine verify path must produce verdicts
// identical to a fresh per-device op_verifier on the same frames.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "common/error.h"
#include "fleet/verifier_hub.h"
#include "helpers.h"
#include "proto/wire.h"
#include "verifier/cfa_check.h"
#include "verifier/firmware_artifact.h"

namespace dialed::fleet {
namespace {

using test::build_op;
using verifier::firmware_artifact;

constexpr const char* adder = "int op(int a, int b) { return a + b; }";

byte_vec master_key() { return byte_vec(32, 0x42); }

instr::linked_program adder_prog() {
  return build_op(adder, "op", instr::instrumentation::dialed);
}

// ---------------------------------------------------------------------------
// Fingerprint / content addressing
// ---------------------------------------------------------------------------

TEST(firmware_id, deterministic_across_independent_builds) {
  // Two separately compiled+linked builds of the same source intern to
  // the same content address.
  const auto a = firmware_artifact::fingerprint(adder_prog());
  const auto b = firmware_artifact::fingerprint(adder_prog());
  EXPECT_EQ(a, b);
}

TEST(firmware_id, distinguishes_source_mode_and_entry) {
  const auto base = firmware_artifact::fingerprint(adder_prog());
  const auto other_src = firmware_artifact::fingerprint(
      build_op("int op(int a, int b) { return a - b; }", "op",
               instr::instrumentation::dialed));
  const auto other_mode = firmware_artifact::fingerprint(
      build_op(adder, "op", instr::instrumentation::tinycfa));
  EXPECT_NE(base, other_src);
  EXPECT_NE(base, other_mode);
  EXPECT_NE(other_src, other_mode);
}

// ---------------------------------------------------------------------------
// Catalog interning
// ---------------------------------------------------------------------------

TEST(catalog, interns_identical_programs_once) {
  firmware_catalog cat;
  const auto fw1 = cat.intern(adder_prog());
  const auto fw2 = cat.intern(adder_prog());
  ASSERT_NE(fw1, nullptr);
  EXPECT_EQ(fw1.get(), fw2.get());  // pointer-identical, not just equal id
  EXPECT_EQ(cat.size(), 1u);

  const auto fw3 = cat.intern(build_op(
      "int op(int x) { return x * 3; }", "op",
      instr::instrumentation::dialed));
  EXPECT_NE(fw3.get(), fw1.get());
  EXPECT_EQ(cat.size(), 2u);
  EXPECT_EQ(cat.find(fw1->id()).get(), fw1.get());
  EXPECT_EQ(cat.find(fw3->id()).get(), fw3.get());
  verifier::firmware_id bogus{};
  EXPECT_EQ(cat.find(bogus), nullptr);
  EXPECT_GT(cat.footprint_bytes(), 0u);
}

TEST(catalog, registry_shares_one_artifact_across_devices) {
  device_registry reg(master_key());
  const auto prog = adder_prog();
  std::vector<device_id> ids;
  for (int d = 0; d < 50; ++d) ids.push_back(reg.provision(prog));
  EXPECT_EQ(reg.catalog()->size(), 1u);

  const auto* first = reg.find(ids.front());
  ASSERT_NE(first, nullptr);
  for (const auto id : ids) {
    const auto* rec = reg.find(id);
    ASSERT_NE(rec, nullptr);
    // One artifact for the whole fleet slice...
    EXPECT_EQ(rec->firmware.get(), first->firmware.get());
    // ...and record.program aliases INTO it (no per-device copy).
    EXPECT_EQ(rec->program.get(), &rec->firmware->program());
  }
}

TEST(catalog, registries_can_share_a_catalog) {
  auto cat = std::make_shared<firmware_catalog>();
  device_registry east(master_key(), cat);
  device_registry west(byte_vec(32, 0x43), cat);
  const auto id_e = east.provision(adder_prog());
  const auto id_w = west.provision(adder_prog());
  EXPECT_EQ(cat->size(), 1u);
  EXPECT_EQ(east.find(id_e)->firmware.get(), west.find(id_w)->firmware.get());
}

// ---------------------------------------------------------------------------
// Verdict equivalence: shared artifact + reused machine vs. fresh
// per-device op_verifier, across all four apps
// ---------------------------------------------------------------------------

void expect_verdict_eq(const verifier::verdict& a,
                       const verifier::verdict& b, const char* label) {
  EXPECT_EQ(a.accepted, b.accepted) << label;
  EXPECT_EQ(a.replayed_result, b.replayed_result) << label;
  EXPECT_EQ(a.replay_instructions, b.replay_instructions) << label;
  EXPECT_EQ(a.log_slots_consumed, b.log_slots_consumed) << label;
  EXPECT_EQ(a.log_bytes, b.log_bytes) << label;
  EXPECT_EQ(a.result_tainted, b.result_tainted) << label;
  ASSERT_EQ(a.findings.size(), b.findings.size()) << label;
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].kind, b.findings[i].kind) << label;
    EXPECT_EQ(a.findings[i].detail, b.findings[i].detail) << label;
    EXPECT_EQ(a.findings[i].pc, b.findings[i].pc) << label;
    EXPECT_EQ(a.findings[i].addr, b.findings[i].addr) << label;
  }
  ASSERT_EQ(a.annotated_log.size(), b.annotated_log.size()) << label;
  for (std::size_t i = 0; i < a.annotated_log.size(); ++i) {
    EXPECT_EQ(a.annotated_log[i].slot, b.annotated_log[i].slot) << label;
    EXPECT_EQ(a.annotated_log[i].value, b.annotated_log[i].value) << label;
    EXPECT_EQ(a.annotated_log[i].kind, b.annotated_log[i].kind) << label;
    EXPECT_EQ(a.annotated_log[i].source_pc, b.annotated_log[i].source_pc)
        << label;
  }
  ASSERT_EQ(a.io_trace.size(), b.io_trace.size()) << label;
  for (std::size_t i = 0; i < a.io_trace.size(); ++i) {
    EXPECT_EQ(a.io_trace[i].addr, b.io_trace[i].addr) << label;
    EXPECT_EQ(a.io_trace[i].value, b.io_trace[i].value) << label;
    EXPECT_EQ(a.io_trace[i].pc, b.io_trace[i].pc) << label;
    EXPECT_EQ(a.io_trace[i].tainted, b.io_trace[i].tainted) << label;
  }
}

std::vector<apps::app_spec> four_apps() {
  auto specs = apps::evaluation_apps();  // SyringePump, FireSensor, Ranger
  specs.push_back(apps::door_lock_app());
  return specs;
}

TEST(equivalence, shared_artifact_matches_fresh_verifier_all_apps) {
  firmware_catalog cat;
  for (const auto& app : four_apps()) {
    const auto prog =
        apps::build_app(app, instr::instrumentation::dialed);
    proto::prover_device dev(prog, test::test_key());
    std::array<std::uint8_t, 16> chal{};
    chal.fill(0x7e);
    const auto rep = dev.invoke(chal, app.representative_input);

    // Fresh per-device verifier (its own artifact) vs. the catalog's
    // shared artifact, verified twice in a row so the second run rides
    // the recycled per-thread machine.
    const verifier::op_verifier fresh(prog, test::test_key());
    const verifier::op_verifier shared(cat.intern(prog), test::test_key());
    const auto v_fresh = fresh.verify(rep, chal);
    const auto v_shared1 = shared.verify(rep, chal);
    const auto v_shared2 = shared.verify(rep, chal);
    expect_verdict_eq(v_fresh, v_shared1, app.name.c_str());
    expect_verdict_eq(v_fresh, v_shared2, app.name.c_str());
    EXPECT_TRUE(v_fresh.accepted) << app.name;
  }
  EXPECT_EQ(cat.size(), 4u);
}

TEST(equivalence, attack_findings_identical_on_shared_path) {
  // Fig. 2 data-only attack and a forged result: the finding-heavy paths
  // (bounds detector, OR comparison, result check) must classify
  // identically through the shared artifact.
  const auto prog =
      apps::build_app(apps::fig2_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test::test_key());
  std::array<std::uint8_t, 16> chal{};

  firmware_catalog cat;
  const verifier::op_verifier fresh(prog, test::test_key());
  const verifier::op_verifier shared(cat.intern(prog), test::test_key());

  const auto attack = dev.invoke(chal, apps::fig2_attack());
  expect_verdict_eq(fresh.verify(attack, chal), shared.verify(attack, chal),
                    "fig2-attack");
  EXPECT_TRUE(shared.verify(attack, chal)
                  .has(verifier::attack_kind::data_only_attack));

  auto forged = dev.invoke(chal, apps::fig2_benign(1, 3));
  forged.claimed_result = 0xbeef;
  expect_verdict_eq(fresh.verify(forged, chal), shared.verify(forged, chal),
                    "fig2-forged-result");
  EXPECT_TRUE(shared.verify(forged, chal)
                  .has(verifier::attack_kind::result_forged));
}

TEST(equivalence, hub_path_matches_direct_verifier) {
  // The full fleet pipeline (wire v2 frame -> hub -> shared artifact)
  // against a direct fresh op_verifier on the same report.
  device_registry reg(master_key());
  const auto prog = adder_prog();
  const auto id = reg.provision(prog);
  verifier_hub hub(reg);
  proto::prover_device dev(prog, reg.derive_key(id));

  const auto grant = hub.challenge(id);
  proto::invocation inv;
  inv.args[0] = 20;
  inv.args[1] = 22;
  const auto rep = dev.invoke(grant.nonce, inv);
  proto::frame_info info;
  info.device_id = id;
  info.seq = grant.seq;
  const auto result = hub.submit(proto::encode_frame(info, rep));
  ASSERT_EQ(result.error, proto::proto_error::none);

  const verifier::op_verifier fresh(prog, reg.derive_key(id));
  expect_verdict_eq(fresh.verify(rep, grant.nonce), result.verdict,
                    "hub-vs-direct");
  EXPECT_TRUE(result.accepted());
}

TEST(equivalence, cfa_walker_matches_on_shared_artifact) {
  // Tiny-CFA deployments: the precomputed-table walker must reconstruct
  // the identical path and findings, benign and attacked.
  const auto prog =
      apps::build_app(apps::fig1_app(), instr::instrumentation::tinycfa);
  proto::prover_device dev(prog, test::test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto fw = firmware_artifact::build(prog);

  for (const auto& [label, inv] :
       {std::pair{"benign", apps::fig1_benign(5)},
        std::pair{"attack", apps::fig1_attack(prog, 15)}}) {
    const auto rep = dev.invoke(chal, inv);
    const auto fresh = verifier::check_cfa_log(prog, rep);
    const auto shared = verifier::check_cfa_log(*fw, rep);
    EXPECT_EQ(fresh.ok, shared.ok) << label;
    EXPECT_EQ(fresh.path, shared.path) << label;
    EXPECT_EQ(fresh.entries_consumed, shared.entries_consumed) << label;
    ASSERT_EQ(fresh.findings.size(), shared.findings.size()) << label;
    for (std::size_t i = 0; i < fresh.findings.size(); ++i) {
      EXPECT_EQ(fresh.findings[i].kind, shared.findings[i].kind) << label;
      EXPECT_EQ(fresh.findings[i].detail, shared.findings[i].detail)
          << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Artifact internals
// ---------------------------------------------------------------------------

TEST(artifact, precomputes_what_replay_used_to_rederive) {
  const auto prog = apps::build_app(apps::fig2_app(),
                                    instr::instrumentation::dialed);
  const auto fw = firmware_artifact::build(prog);

  // Canonical ER range for the MAC.
  EXPECT_EQ(byte_vec(fw->er_bytes().begin(), fw->er_bytes().end()),
            prog.er_bytes());

  // Access-site table resolved to code addresses.
  EXPECT_EQ(fw->sites().size(), prog.compile_info.access_sites.size());
  for (const auto& [pc, site] : fw->sites()) {
    EXPECT_GE(pc, prog.er_min);
    EXPECT_LE(pc, prog.er_max);
    EXPECT_GT(site.size_bytes, 0);
  }

  // The decoded index covers the ER entry and agrees with a live decode.
  const auto* d = fw->decoded_at(prog.er_min);
  ASSERT_NE(d, nullptr);
  const auto& flat = fw->flat_image();
  const std::array<std::uint16_t, 3> words = {
      static_cast<std::uint16_t>(flat[prog.er_min] |
                                 (flat[prog.er_min + 1] << 8)),
      static_cast<std::uint16_t>(flat[prog.er_min + 2] |
                                 (flat[prog.er_min + 3] << 8)),
      static_cast<std::uint16_t>(flat[prog.er_min + 4] |
                                 (flat[prog.er_min + 5] << 8))};
  const auto live = isa::decode(words, prog.er_min);
  EXPECT_EQ(d->ins.op, live.ins.op);
  EXPECT_EQ(d->words, live.words);

  // Outside the ER there is no cache entry.
  EXPECT_EQ(fw->decoded_at(static_cast<std::uint16_t>(prog.er_min - 2)),
            nullptr);
  EXPECT_EQ(fw->decoded_at(static_cast<std::uint16_t>(prog.er_min + 1)),
            nullptr);

  // Identity is exposed for operator tooling.
  EXPECT_EQ(fw->id_hex().size(), 64u);
  EXPECT_GT(fw->footprint_bytes(),
            firmware_artifact::program_footprint_bytes(prog));
}

}  // namespace
}  // namespace dialed::fleet
