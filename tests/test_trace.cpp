// Execution tracer/coverage, and the DoorLock extension app (a byte-
// granularity data-only attack beyond the paper's Fig. 2).
#include <gtest/gtest.h>

#include "emu/trace.h"
#include "rot/rot.h"
#include "helpers.h"
#include "proto/session.h"

namespace dialed {
namespace {

using test::build_op;
using test::test_key;

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(tracer, counts_and_sequence) {
  emu::memory_map map;
  const auto img = masm::assemble_text(
      "        .org 0xc000\n"
      "__start:\n"
      "        mov #3, r14\n"
      "loop:   dec r14\n"
      "        jne loop\n"
      "        mov #1, &HALT_PORT\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n",
      map.predefined_symbols());
  emu::machine m(map);
  emu::tracer::options opts;
  opts.record_sequence = true;
  emu::tracer tr(opts);
  m.get_bus().add_watcher(&tr);
  m.load(img);
  m.reset();
  m.run(10'000);
  m.get_bus().remove_watcher(&tr);

  // mov(1) + 3x(dec+jne) + halt-mov(1) = 8 retired instructions.
  EXPECT_EQ(tr.total_executed(), 8u);
  EXPECT_EQ(tr.counts().at(img.symbol("loop")), 3u);
  EXPECT_EQ(tr.sequence().size(), 8u);
  EXPECT_EQ(tr.sequence().front().pc, 0xc000);
}

TEST(tracer, hotspots_ranked_descending) {
  emu::memory_map map;
  const auto img = masm::assemble_text(
      "        .org 0xc000\n"
      "__start:\n"
      "        mov #10, r14\n"
      "loop:   dec r14\n"
      "        jne loop\n"
      "        mov #1, &HALT_PORT\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n",
      map.predefined_symbols());
  emu::machine m(map);
  emu::tracer tr;
  m.get_bus().add_watcher(&tr);
  m.load(img);
  m.reset();
  m.run(10'000);
  const auto hs = tr.hotspots(2);
  ASSERT_EQ(hs.size(), 2u);
  EXPECT_GE(hs[0].second, hs[1].second);
  EXPECT_EQ(hs[0].second, 10u);
  m.get_bus().remove_watcher(&tr);
}

TEST(tracer, coverage_reflects_untaken_branch) {
  const auto prog = build_op(
      "int op(int a) { if (a > 5) { return 1; } return 2; }", "op",
      instr::instrumentation::none);
  auto run_with = [&](std::uint16_t arg, emu::tracer& tr) {
    emu::machine m(prog.options.map);
    rot::root_of_trust rt(m);  // crt0 invokes SW-Att after the op
    rt.vrased().provision_key(test_key());
    m.get_bus().add_watcher(&tr);
    m.load(prog.image);
    m.mailbox().set_arg(0, arg);
    m.reset();
    m.run(100'000'000);
    m.get_bus().remove_watcher(&tr);
  };

  emu::tracer tr;
  run_with(3, tr);  // takes the else path
  const auto cov = tr.cover(prog.image, prog.er_min, prog.er_max);
  EXPECT_GT(cov.total, 0);
  EXPECT_GT(cov.executed, 0);
  EXPECT_FALSE(cov.never_executed.empty());  // the then-arm never ran
  EXPECT_LT(cov.percent(), 100.0);

  // Running the other input exercises a different never-executed set.
  emu::tracer tr2;
  run_with(9, tr2);
  const auto cov2 = tr2.cover(prog.image, prog.er_min, prog.er_max);
  EXPECT_NE(cov2.never_executed, cov.never_executed);
}

TEST(tracer, clear_resets_state) {
  emu::tracer tr;
  tr.on_exec(0x1000, {});
  EXPECT_EQ(tr.total_executed(), 1u);
  tr.clear();
  EXPECT_EQ(tr.total_executed(), 0u);
  EXPECT_TRUE(tr.counts().empty());
}

// ---------------------------------------------------------------------------
// DoorLock app
// ---------------------------------------------------------------------------

TEST(door_lock, correct_pin_opens) {
  const auto prog =
      apps::build_app(apps::door_lock_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto rep = dev.invoke(chal, apps::door_lock_try({3, 1, 4, 1, 5, 9}));
  EXPECT_EQ(rep.claimed_result, 1);
  EXPECT_EQ(dev.machine().gpio().output(), 1);  // latch energized
}

TEST(door_lock, wrong_pin_stays_locked) {
  const auto prog =
      apps::build_app(apps::door_lock_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto rep = dev.invoke(chal, apps::door_lock_try({1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(rep.claimed_result, 0);
  EXPECT_EQ(dev.machine().gpio().output(), 0);
}

TEST(door_lock, overflow_attack_opens_with_attacker_pin) {
  const auto prog =
      apps::build_app(apps::door_lock_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto rep =
      dev.invoke(chal, apps::door_lock_attack({7, 7, 7, 7, 7, 7}));
  EXPECT_EQ(rep.claimed_result, 1);               // the door opened...
  EXPECT_EQ(dev.machine().gpio().output(), 1);
  EXPECT_TRUE(rep.exec);                          // ...and APEX saw nothing
}

TEST(door_lock, attack_detected_as_data_only) {
  const auto prog =
      apps::build_app(apps::door_lock_app(), instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());

  auto v = vrf.check(dev.invoke(vrf.new_challenge(),
                                apps::door_lock_try({3, 1, 4, 1, 5, 9})));
  EXPECT_TRUE(v.accepted);

  v = vrf.check(dev.invoke(vrf.new_challenge(),
                           apps::door_lock_attack({7, 7, 7, 7, 7, 7})));
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(verifier::attack_kind::data_only_attack));
  EXPECT_FALSE(v.has(verifier::attack_kind::control_flow_attack));
}

TEST(door_lock, master_code_adjacent_to_buffer) {
  const auto prog =
      apps::build_app(apps::door_lock_app(), instr::instrumentation::dialed);
  EXPECT_EQ(prog.global_addrs.at("master"),
            prog.global_addrs.at("entered") + 6);
}

}  // namespace
}  // namespace dialed
