// Durable fleet state: codec round trips, WAL torn-tail/corruption
// semantics, and the crash-recovery property end to end — a hub rebuilt
// from snapshot + WAL rejects pre-crash replays and re-interns firmware
// artifacts by content id.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/store_error.h"
#include "fleet/verifier_hub.h"
#include "helpers.h"
#include "proto/wire.h"
#include "store/codec.h"
#include "store/fleet_store.h"
#include "store/wal.h"
#include "verifier/firmware_artifact.h"

namespace dialed::store {
namespace {

namespace fs = std::filesystem;

using test::build_op;

constexpr const char* adder = "int op(int a, int b) { return a + b; }";
constexpr const char* muler = "int op(int a, int b) { return a * b; }";

byte_vec master_key() { return byte_vec(32, 0x42); }

instr::linked_program prog_for(const char* src) {
  return build_op(src, "op", instr::instrumentation::dialed);
}

proto::invocation args(std::uint16_t a0, std::uint16_t a1 = 0) {
  proto::invocation inv;
  inv.args[0] = a0;
  inv.args[1] = a1;
  return inv;
}

byte_vec frame_for(fleet::device_id id, const fleet::challenge_grant& g,
                   const verifier::attestation_report& rep) {
  proto::frame_info info;
  info.device_id = id;
  info.seq = g.seq;
  return proto::encode_frame(info, rep);
}

/// Fresh per-test state directory, removed on teardown.
class store_test : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("dialed-store-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fleet_store::options opts() const {
    fleet_store::options o;
    o.master_key = master_key();
    o.hub.sequential_batch = true;  // single-threaded tests
    return o;
  }

  std::string dir() const { return dir_.string(); }
  fs::path wal_file(std::uint64_t gen) const {
    return dir_ / ("wal-" + std::to_string(gen) + ".log");
  }
  fs::path snapshot() const { return dir_ / fleet_store::snapshot_file; }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// codec: linked_program round trip
// ---------------------------------------------------------------------------

TEST(store_codec, program_round_trip_preserves_content_id) {
  for (const char* src : {adder, muler}) {
    const auto prog = prog_for(src);
    writer w;
    write_program(w, prog);
    reader r(w.data(), "test");
    const auto back = read_program(r);
    EXPECT_TRUE(r.done());

    // Content id covers image bytes, symbols, layout, memory map and
    // access sites — identical fingerprints mean the verification-
    // relevant state round-tripped byte-identically.
    EXPECT_EQ(verifier::firmware_artifact::fingerprint(prog),
              verifier::firmware_artifact::fingerprint(back));
    // And the parts the fingerprint does not cover survive too.
    EXPECT_EQ(prog.er_asm_text, back.er_asm_text);
    EXPECT_EQ(prog.compile_info.asm_text, back.compile_info.asm_text);
    EXPECT_EQ(prog.compile_info.globals.size(),
              back.compile_info.globals.size());
    EXPECT_EQ(prog.compile_info.functions.size(),
              back.compile_info.functions.size());
    EXPECT_EQ(prog.compile_info.helpers, back.compile_info.helpers);
    EXPECT_EQ(prog.image.listing.size(), back.image.listing.size());
    EXPECT_EQ(prog.options.pass_opts.symbols,
              back.options.pass_opts.symbols);
  }
}

TEST(store_codec, truncated_program_fails_closed) {
  const auto prog = prog_for(adder);
  writer w;
  write_program(w, prog);
  const auto full = w.data();
  // Every strict prefix must throw a typed truncation error, never
  // return a half-parsed program.
  for (const std::size_t cut : {std::size_t{0}, full.size() / 4,
                                full.size() / 2, full.size() - 1}) {
    reader r(std::span<const std::uint8_t>(full).subspan(0, cut), "test");
    try {
      (void)read_program(r);
      FAIL() << "prefix of " << cut << " bytes parsed";
    } catch (const store_error& e) {
      EXPECT_EQ(e.kind(), store_error_kind::truncated_record);
    }
  }
}

TEST(store_codec, crc32_known_vector) {
  const std::string s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const std::uint8_t*>(s.data()),
                   s.size()}),
            0xcbf43926u);  // the IEEE 802.3 check value
}

// ---------------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------------

TEST(store_wal, records_round_trip_and_torn_tail_drops) {
  const auto path = fs::path(::testing::TempDir()) / "wal-test.log";
  fs::remove(path);
  {
    wal_writer w(path.string(), 0, 0, {});
    w.append(byte_vec{1, 2, 3});
    w.append(byte_vec{4});
    EXPECT_EQ(w.records(), 2u);
  }
  auto data = *[&] {
    std::ifstream in(path, std::ios::binary);
    return std::optional<byte_vec>(
        byte_vec((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>()));
  }();
  const auto clean = read_wal(data);
  ASSERT_EQ(clean.records.size(), 2u);
  EXPECT_FALSE(clean.torn_tail);
  EXPECT_EQ(clean.records[0].payload, (byte_vec{1, 2, 3}));
  EXPECT_EQ(clean.records[1].payload, (byte_vec{4}));

  // Cut anywhere inside the final record: it is dropped, the first
  // survives, and valid_bytes points at the cut boundary.
  for (std::size_t cut = data.size() - 1; cut > 11; --cut) {
    const auto torn =
        read_wal(std::span<const std::uint8_t>(data).subspan(0, cut));
    EXPECT_EQ(torn.records.size(), 1u) << "cut=" << cut;
    EXPECT_TRUE(torn.torn_tail);
    EXPECT_EQ(torn.valid_bytes, 11u);
  }

  // Corrupting the FIRST record (intact bytes follow) is not a torn
  // write — it must fail closed.
  auto corrupt = data;
  corrupt[9] ^= 0xff;  // payload byte of record 0
  try {
    (void)read_wal(corrupt);
    FAIL() << "mid-log corruption loaded";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::crc_mismatch);
  }

  // The same flip in the LAST record reads as a torn tail (a crash mid
  // write), dropping only that record.
  auto tail_flip = data;
  tail_flip[data.size() - 1] ^= 0xff;
  const auto dropped = read_wal(tail_flip);
  EXPECT_EQ(dropped.records.size(), 1u);
  EXPECT_TRUE(dropped.torn_tail);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// fleet_store: the crash-recovery property, end to end
// ---------------------------------------------------------------------------

TEST_F(store_test, accepted_report_is_replay_after_reopen) {
  byte_vec frame_a;
  fleet::device_id id_a = 0, id_b = 0;
  byte_vec key_a, key_b;
  {
    auto st = fleet_store::open(dir(), opts());
    // Two firmwares — recovery must re-intern BOTH by content id.
    id_a = st.registry->provision(prog_for(adder));
    id_b = st.registry->provision(prog_for(muler));
    key_a = st.registry->find(id_a)->key;
    key_b = st.registry->find(id_b)->key;
    ASSERT_EQ(st.catalog->size(), 2u);

    proto::prover_device dev(*st.registry->find(id_a)->program, key_a);
    const auto g = st.hub->challenge(id_a);
    frame_a = frame_for(id_a, g, dev.invoke(g.nonce, args(20, 22)));
    const auto r = st.hub->submit(frame_a);
    ASSERT_TRUE(r.accepted());
    EXPECT_EQ(r.verdict.replayed_result, 42);
    // The store saw every event (2 firmware + 2 provision + 1 challenge
    // + 1 retire + 1 baseline + 1 verdict).
    EXPECT_EQ(st.store->wal_records(), 8u);
  }  // "crash": drop every in-memory object

  auto st = fleet_store::open(dir(), opts());
  // Registry and catalog round-tripped: same keys, same shared-artifact
  // structure (one artifact per image, found by content id).
  EXPECT_EQ(st.registry->size(), 2u);
  EXPECT_EQ(st.catalog->size(), 2u);
  EXPECT_EQ(st.registry->find(id_a)->key, key_a);
  EXPECT_EQ(st.registry->find(id_b)->key, key_b);
  EXPECT_EQ(st.registry->find(id_a)->firmware,
            st.catalog->find(st.registry->find(id_a)->firmware->id()));

  // THE property: the frame accepted before the crash is a replay now.
  const auto replayed = st.hub->submit(frame_a);
  EXPECT_EQ(replayed.error, proto::proto_error::replayed_report);

  // And the restarted hub still serves fresh rounds on both firmwares.
  for (const auto [id, a, b, want] :
       {std::tuple{id_a, 20, 22, 42}, std::tuple{id_b, 6, 7, 42}}) {
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    const auto g = st.hub->challenge(id);
    const auto r = st.hub->submit(frame_for(
        id, g,
        dev.invoke(g.nonce, args(static_cast<std::uint16_t>(a),
                                 static_cast<std::uint16_t>(b)))));
    EXPECT_TRUE(r.accepted()) << "device " << id;
    EXPECT_EQ(r.verdict.replayed_result, want);
  }
}

TEST_F(store_test, delta_baseline_survives_kill_and_reopen) {
  // Wire v2.1 crash-recovery property: accept a DELTA round, kill the
  // process (drop every in-memory object), reopen — the next delta
  // frame still verifies, while a baseline-desynced frame is rejected
  // with the typed baseline_mismatch (and its challenge survives for
  // the full-frame fallback), never accepted.
  fleet::device_id id = 0;
  std::uint32_t baseline_seq = 0;
  byte_vec baseline_bytes;
  {
    auto st = fleet_store::open(dir(), opts());
    id = st.registry->provision(prog_for(adder));
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    // Round 1: full frame, establishes the baseline.
    const auto g1 = st.hub->challenge(id);
    const auto rep1 = dev.invoke(g1.nonce, args(20, 22));
    ASSERT_TRUE(st.hub->submit(frame_for(id, g1, rep1)).accepted());
    // Round 2: a DELTA round, accepted — its OR is now the baseline
    // that must survive the crash.
    const auto g2 = st.hub->challenge(id);
    const auto rep2 = dev.invoke(g2.nonce, args(7, 8));
    proto::frame_info info;
    info.device_id = id;
    info.seq = g2.seq;
    const auto r2 = st.hub->submit(
        proto::encode_delta_frame(info, rep2, g1.seq, rep1.or_bytes));
    ASSERT_TRUE(r2.accepted());
    EXPECT_EQ(r2.verdict.replayed_result, 15);
    baseline_seq = g2.seq;
    baseline_bytes = rep2.or_bytes;
  }  // "crash"

  auto st = fleet_store::open(dir(), opts());
  proto::prover_device dev(*st.registry->find(id)->program,
                           st.registry->find(id)->key);
  // A baseline-DESYNCED delta (stale seq, wrong bytes) is the typed
  // error, not an acceptance — and not a burned nonce.
  const auto g3 = st.hub->challenge(id);
  const auto rep3 = dev.invoke(g3.nonce, args(2, 3));
  proto::frame_info info;
  info.device_id = id;
  info.seq = g3.seq;
  const auto desynced = st.hub->submit(proto::encode_delta_frame(
      info, rep3, baseline_seq + 17, byte_vec(64, 0xcc)));
  EXPECT_EQ(desynced.error, proto::proto_error::baseline_mismatch);
  EXPECT_FALSE(desynced.accepted());
  EXPECT_EQ(st.hub->outstanding(id), 1u);  // challenge survived

  // The RESTORED baseline still reconstructs: the same report as a
  // delta against the pre-crash round verifies...
  const auto resent = st.hub->submit(
      proto::encode_delta_frame(info, rep3, baseline_seq, baseline_bytes));
  ASSERT_TRUE(resent.accepted());
  EXPECT_EQ(resent.verdict.replayed_result, 5);

  // ...and the freshly-accepted delta round advanced the baseline: the
  // next round deltas against ROUND 3, not the pre-crash state.
  const auto g4 = st.hub->challenge(id);
  const auto rep4 = dev.invoke(g4.nonce, args(30, 12));
  info.seq = g4.seq;
  const auto r4 = st.hub->submit(
      proto::encode_delta_frame(info, rep4, g3.seq, rep3.or_bytes));
  ASSERT_TRUE(r4.accepted());
  EXPECT_EQ(r4.verdict.replayed_result, 42);
}

TEST_F(store_test, delta_baseline_survives_wal_only_recovery) {
  // Same property with compact_on_open disabled: the baseline must
  // replay from the WAL record alone, not just the snapshot section.
  auto o = opts();
  o.compact_on_open = false;
  fleet::device_id id = 0;
  fleet::challenge_grant g1;
  byte_vec or1;
  {
    auto st = fleet_store::open(dir(), o);
    id = st.registry->provision(prog_for(adder));
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    g1 = st.hub->challenge(id);
    const auto rep1 = dev.invoke(g1.nonce, args(1, 2));
    or1 = rep1.or_bytes;
    ASSERT_TRUE(st.hub->submit(frame_for(id, g1, rep1)).accepted());
  }  // crash with the baseline only in wal-0.log

  auto st = fleet_store::open(dir(), o);
  proto::prover_device dev(*st.registry->find(id)->program,
                           st.registry->find(id)->key);
  const auto g2 = st.hub->challenge(id);
  const auto rep2 = dev.invoke(g2.nonce, args(3, 4));
  proto::frame_info info;
  info.device_id = id;
  info.seq = g2.seq;
  const auto r = st.hub->submit(
      proto::encode_delta_frame(info, rep2, g1.seq, or1));
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(r.verdict.replayed_result, 7);
}

TEST_F(store_test, auto_provision_after_reopen_never_reuses_ids) {
  fleet::device_id first = 0;
  {
    auto st = fleet_store::open(dir(), opts());
    first = st.registry->provision(prog_for(adder));
  }
  auto st = fleet_store::open(dir(), opts());
  const auto second = st.registry->provision(prog_for(adder));
  EXPECT_GT(second, first);
  EXPECT_EQ(st.catalog->size(), 1u);  // re-interned, not duplicated
}

TEST_F(store_test, outstanding_challenges_and_clock_survive) {
  fleet::device_id id = 0;
  fleet::challenge_grant g2;
  byte_vec key;
  {
    auto o = opts();
    o.hub.challenge_ttl = 10;
    auto st = fleet_store::open(dir(), o);
    id = st.registry->provision(prog_for(adder));
    key = st.registry->find(id)->key;
    st.hub->tick(3);
    (void)st.hub->challenge(id);
    g2 = st.hub->challenge(id);
    EXPECT_EQ(st.hub->outstanding(id), 2u);
  }
  auto o = opts();
  o.hub.challenge_ttl = 10;
  auto st = fleet_store::open(dir(), o);
  EXPECT_EQ(st.hub->now(), 3u);
  EXPECT_EQ(st.hub->outstanding(id), 2u);
  // A pre-crash grant still verifies after the restart (the answer was
  // only delayed, not lost).
  proto::prover_device dev(*st.registry->find(id)->program, key);
  const auto r =
      st.hub->submit(frame_for(id, g2, dev.invoke(g2.nonce, args(1, 2))));
  EXPECT_TRUE(r.accepted());
  // And the TTL keeps counting on the restored clock.
  const auto g3 = st.hub->challenge(id);
  st.hub->tick(11);
  const auto late =
      st.hub->submit(frame_for(id, g3, dev.invoke(g3.nonce, args(1))));
  EXPECT_EQ(late.error, proto::proto_error::challenge_expired);
}

TEST_F(store_test, kill_after_k_wal_records_recovers_prefix_state) {
  // Build a history, then replay every WAL prefix as its own "crash".
  auto o = opts();
  o.compact_on_open = false;  // keep the whole history in the WAL
  fleet::device_id id = 0;
  {
    auto st = fleet_store::open(dir(), o);
    id = st.registry->provision(prog_for(adder));
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    const auto g = st.hub->challenge(id);
    const auto r = st.hub->submit(
        frame_for(id, g, dev.invoke(g.nonce, args(20, 22))));
    ASSERT_TRUE(r.accepted());
    ASSERT_EQ(st.store->wal_records(), 6u);
  }
  const auto full = [&] {
    std::ifstream in(wal_file(0), std::ios::binary);
    return byte_vec((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }();

  // Record boundaries from the framing itself.
  const auto parsed = read_wal(full);
  ASSERT_EQ(parsed.records.size(), 6u);
  std::vector<std::size_t> ends;
  std::size_t pos = 0;
  for (const auto& rec : parsed.records) {
    pos += 8 + rec.payload.size();
    ends.push_back(pos);
  }

  const std::size_t outstanding_after[] = {0, 0, 0, 1, 0, 0, 0};
  for (std::size_t k = 0; k <= 6; ++k) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    const std::size_t bytes = k == 0 ? 0 : ends[k - 1];
    std::ofstream out(wal_file(0), std::ios::binary);
    out.write(reinterpret_cast<const char*>(full.data()),
              static_cast<std::streamsize>(bytes));
    out.close();

    auto st = fleet_store::open(dir(), o);
    // Records: [firmware, provision, challenge, retire, baseline,
    // verdict].
    EXPECT_EQ(st.registry->size(), k >= 2 ? 1u : 0u) << "k=" << k;
    EXPECT_EQ(st.catalog->size(), k >= 1 ? 1u : 0u) << "k=" << k;
    if (k >= 2) {
      EXPECT_EQ(st.hub->outstanding(id), outstanding_after[k])
          << "k=" << k;
    }
    const auto stats = st.hub->stats();
    EXPECT_EQ(stats.challenges_issued, k >= 3 ? 1u : 0u) << "k=" << k;
    EXPECT_EQ(stats.reports_accepted, k >= 6 ? 1u : 0u) << "k=" << k;
  }
}

TEST_F(store_test, torn_final_wal_record_is_dropped_cleanly) {
  auto o = opts();
  o.compact_on_open = false;
  fleet::device_id id = 0;
  {
    auto st = fleet_store::open(dir(), o);
    id = st.registry->provision(prog_for(adder));
    (void)st.hub->challenge(id);
    ASSERT_EQ(st.store->wal_records(), 3u);
  }
  // Tear the challenge record: chop the last byte off the file.
  const auto before = fs::file_size(wal_file(0));
  fs::resize_file(wal_file(0), before - 1);

  auto st = fleet_store::open(dir(), o);
  EXPECT_EQ(st.registry->size(), 1u);
  EXPECT_EQ(st.hub->outstanding(id), 0u);  // torn grant never happened
  EXPECT_EQ(st.hub->stats().challenges_issued, 0u);
  // The torn bytes were truncated away; the log keeps appending cleanly
  // from the cut (2 surviving records + the new challenge).
  (void)st.hub->challenge(id);
  EXPECT_EQ(st.store->wal_records(), 3u);
}

TEST_F(store_test, zero_filled_wal_tail_reads_as_torn) {
  // Power loss can extend a file with zero blocks that were never
  // written; crc32("") == 0, so an all-zero "record" passes its CRC —
  // it must still be recognized as a torn tail, not loaded or fatal.
  auto o = opts();
  o.compact_on_open = false;
  fleet::device_id id = 0;
  {
    auto st = fleet_store::open(dir(), o);
    id = st.registry->provision(prog_for(adder));
  }
  {
    std::ofstream f(wal_file(0),
                    std::ios::binary | std::ios::app);
    const byte_vec zeros(64, 0);
    f.write(reinterpret_cast<const char*>(zeros.data()),
            static_cast<std::streamsize>(zeros.size()));
  }
  auto st = fleet_store::open(dir(), o);
  EXPECT_EQ(st.registry->size(), 1u);
  // But zeros with REAL data after them are corruption, not a tear.
  byte_vec bad(16, 0);
  bad[12] = 0xab;
  {
    std::ofstream f(wal_file(0),
                    std::ios::binary | std::ios::app);
    f.write(reinterpret_cast<const char*>(bad.data()),
            static_cast<std::streamsize>(bad.size()));
  }
  try {
    (void)fleet_store::open(dir(), o);
    FAIL() << "zeros followed by data loaded";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::bad_record);
  }
}

TEST_F(store_test, restore_under_smaller_cap_reconverges) {
  fleet::device_id id = 0;
  {
    auto o = opts();
    o.hub.max_outstanding = 8;
    auto st = fleet_store::open(dir(), o);
    id = st.registry->provision(prog_for(adder));
    for (int i = 0; i < 8; ++i) (void)st.hub->challenge(id);
    EXPECT_EQ(st.hub->outstanding(id), 8u);
  }
  auto o = opts();
  o.hub.max_outstanding = 1;
  auto st = fleet_store::open(dir(), o);
  EXPECT_EQ(st.hub->outstanding(id), 8u);  // restored as persisted...
  const auto g = st.hub->challenge(id);
  // ...but one grant under the smaller cap re-establishes the invariant
  // (all 8 restored entries evicted, the new one outstanding).
  EXPECT_EQ(g.note, proto::proto_error::challenge_superseded);
  EXPECT_EQ(st.hub->outstanding(id), 1u);
  EXPECT_EQ(st.hub->stats().challenges_superseded, 8u);
}

TEST_F(store_test, corrupt_state_fails_closed_with_typed_errors) {
  {
    auto st = fleet_store::open(dir(), opts());
    (void)st.registry->provision(prog_for(adder));
    st.store->compact();  // ensure a snapshot exists
  }

  // CRC corruption in the snapshot body (XOR, so the byte always
  // actually changes).
  {
    std::fstream f(snapshot(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(64);
    const int b = f.get();
    f.seekp(64);
    f.put(static_cast<char>(b ^ 0xff));
  }
  try {
    (void)fleet_store::open(dir(), opts());
    FAIL() << "corrupt snapshot loaded";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::crc_mismatch);
  }

  // Bad magic.
  {
    std::ofstream f(snapshot(), std::ios::binary);
    f << "NOPE this is not a snapshot";
  }
  try {
    (void)fleet_store::open(dir(), opts());
    FAIL() << "bad magic loaded";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::bad_magic);
  }

  // Future version: refuse, do not guess.
  {
    auto st = fleet_store::open(dir() + "-v2", opts());
    st.store->compact();
    auto data = [&] {
      std::ifstream in(fs::path(dir() + "-v2") /
                           fleet_store::snapshot_file,
                       std::ios::binary);
      return byte_vec((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    }();
    data[4] = 0x63;  // version byte
    store_le32(data, data.size() - 4,
               crc32(std::span(data).subspan(0, data.size() - 4)));
    std::ofstream out(snapshot(), std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  try {
    (void)fleet_store::open(dir(), opts());
    FAIL() << "future version loaded";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::bad_version);
  }
  fs::remove_all(dir() + "-v2");
}

TEST_F(store_test, master_key_mismatch_is_rejected) {
  {
    auto st = fleet_store::open(dir(), opts());
    (void)st.registry->provision(prog_for(adder));
  }
  auto wrong = opts();
  wrong.master_key = byte_vec(32, 0x13);
  try {
    (void)fleet_store::open(dir(), wrong);
    FAIL() << "wrong master key accepted";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::master_key_mismatch);
  }
  // Empty key on reopen = "use the persisted one".
  auto inherit = opts();
  inherit.master_key.clear();
  auto st = fleet_store::open(dir(), inherit);
  EXPECT_EQ(st.registry->master_key(), master_key());
}

TEST_F(store_test, per_device_stats_survive_reopen) {
  fleet::device_id id = 0;
  {
    auto st = fleet_store::open(dir(), opts());
    id = st.registry->provision(prog_for(adder));
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    const auto g = st.hub->challenge(id);
    const auto frame = frame_for(id, g, dev.invoke(g.nonce, args(1, 2)));
    ASSERT_TRUE(st.hub->submit(frame).accepted());
    // A replay and a stale nonce, for the reject counters.
    EXPECT_EQ(st.hub->submit(frame).error,
              proto::proto_error::replayed_report);
    auto rep = dev.invoke(g.nonce, args(1, 2));
    rep.challenge[0] ^= 0xff;
    fleet::challenge_grant fake;
    fake.seq = g.seq;
    EXPECT_EQ(st.hub->submit(frame_for(id, fake, rep)).error,
              proto::proto_error::stale_nonce);

    const auto s = st.hub->stats();
    ASSERT_EQ(s.per_device.count(id), 1u);
    EXPECT_EQ(s.per_device.at(id).accepted, 1u);
    EXPECT_EQ(s.per_device.at(id).replayed, 1u);
    EXPECT_EQ(s.per_device.at(id).rejected_protocol, 1u);
  }
  auto st = fleet_store::open(dir(), opts());
  const auto s = st.hub->stats();
  ASSERT_EQ(s.per_device.count(id), 1u);
  EXPECT_EQ(s.per_device.at(id).accepted, 1u);
  EXPECT_EQ(s.per_device.at(id).replayed, 1u);
  EXPECT_EQ(s.per_device.at(id).rejected_protocol, 1u);
  EXPECT_EQ(s.reports_accepted, 1u);
  EXPECT_EQ(s.rejected_by_error[static_cast<std::size_t>(
                proto::proto_error::replayed_report)],
            1u);
}

TEST_F(store_test, compaction_preserves_state_and_resets_wal) {
  fleet::device_id id = 0;
  byte_vec frame;
  {
    auto st = fleet_store::open(dir(), opts());
    id = st.registry->provision(prog_for(adder));
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    const auto g = st.hub->challenge(id);
    frame = frame_for(id, g, dev.invoke(g.nonce, args(20, 22)));
    ASSERT_TRUE(st.hub->submit(frame).accepted());

    const auto gen_before = st.store->generation();
    st.store->compact();
    EXPECT_EQ(st.store->wal_records(), 0u);
    EXPECT_EQ(st.store->generation(), gen_before + 1);
    EXPECT_FALSE(fs::exists(wal_file(gen_before)));

    // Post-compaction events land in the new generation's log.
    (void)st.hub->challenge(id);
    EXPECT_EQ(st.store->wal_records(), 1u);
  }
  auto st = fleet_store::open(dir(), opts());
  EXPECT_EQ(st.hub->submit(frame).error,
            proto::proto_error::replayed_report);
  EXPECT_EQ(st.hub->outstanding(id), 1u);
  EXPECT_EQ(st.hub->stats().reports_accepted, 1u);
}

TEST_F(store_test, interrupted_compaction_chain_replays_both_logs) {
  // An online compaction that crashes between rolling the log and
  // publishing the snapshot leaves wal-G AND wal-(G+1), both live.
  // Simulate that layout by splitting a real log at a record boundary.
  auto o = opts();
  o.compact_on_open = false;
  fleet::device_id id = 0;
  byte_vec frame;
  {
    auto st = fleet_store::open(dir(), o);
    id = st.registry->provision(prog_for(adder));
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    const auto g = st.hub->challenge(id);
    frame = frame_for(id, g, dev.invoke(g.nonce, args(20, 22)));
    ASSERT_TRUE(st.hub->submit(frame).accepted());
    ASSERT_EQ(st.store->wal_records(), 6u);
  }
  const auto bytes = *read_file(wal_file(0));
  const auto parsed = read_wal(bytes);
  ASSERT_EQ(parsed.records.size(), 6u);
  const auto rewrite = [&](std::uint64_t gen, std::size_t from,
                           std::size_t to) {
    fs::remove(wal_file(gen));
    wal_writer w(wal_file(gen).string(), 0, 0, {});
    for (std::size_t i = from; i < to; ++i) {
      w.append(parsed.records[i].payload);
    }
  };
  rewrite(0, 0, 4);
  rewrite(1, 4, 6);

  {
    // The chain replays in order: full pre-crash state, generation
    // advanced to the newest log, new appends land there.
    auto st = fleet_store::open(dir(), o);
    EXPECT_EQ(st.store->generation(), 1u);
    EXPECT_EQ(st.hub->submit(frame).error,
              proto::proto_error::replayed_report);
    (void)st.hub->challenge(id);
    // 2 replayed in wal-1 + the journaled replay rejection + 1 challenge.
    EXPECT_EQ(st.store->wal_records(), 4u);
  }

  // compact_on_open folds a multi-file chain back into one snapshot +
  // one fresh log even when the tail generation alone looks compact.
  rewrite(0, 0, 4);
  rewrite(1, 4, 6);
  {
    auto st = fleet_store::open(dir(), opts());
    EXPECT_EQ(st.store->generation(), 2u);
    EXPECT_EQ(st.store->wal_records(), 0u);
    EXPECT_FALSE(fs::exists(wal_file(0)));
    EXPECT_FALSE(fs::exists(wal_file(1)));
    EXPECT_EQ(st.hub->submit(frame).error,
              proto::proto_error::replayed_report);
  }
}

TEST_F(store_test, damaged_wal_chain_fails_closed) {
  // Same split-chain layout, then damage it: only the NEWEST generation
  // may end torn — a torn or missing log with a successor was complete
  // once, so the damage is corruption, not a crash signature.
  auto o = opts();
  o.compact_on_open = false;
  {
    auto st = fleet_store::open(dir(), o);
    const auto id = st.registry->provision(prog_for(adder));
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    const auto g = st.hub->challenge(id);
    ASSERT_TRUE(
        st.hub->submit(frame_for(id, g, dev.invoke(g.nonce, args(1, 2))))
            .accepted());
  }
  const auto bytes = *read_file(wal_file(0));
  const auto parsed = read_wal(bytes);
  const auto rewrite = [&](std::uint64_t gen, std::size_t from,
                           std::size_t to) {
    fs::remove(wal_file(gen));
    wal_writer w(wal_file(gen).string(), 0, 0, {});
    for (std::size_t i = from; i < to; ++i) {
      w.append(parsed.records[i].payload);
    }
  };

  // Torn mid-chain: truncate wal-0's final record while wal-1 exists.
  rewrite(0, 0, 4);
  rewrite(1, 4, 6);
  fs::resize_file(wal_file(0), fs::file_size(wal_file(0)) - 1);
  try {
    auto st = fleet_store::open(dir(), o);
    FAIL() << "torn mid-chain log loaded";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::crc_mismatch);
  }

  // Missing mid-chain: wal-1 exists but wal-0 is gone entirely.
  fs::remove(wal_file(0));
  try {
    auto st = fleet_store::open(dir(), o);
    FAIL() << "gapped chain loaded";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::crc_mismatch);
  }
}

TEST_F(store_test, concurrent_traffic_journals_consistently) {
  // Four devices hammered from four threads, every event journaled
  // through the store's shared appender (shard locks + registry lock all
  // feeding one WAL). The reopened hub must agree with the live one.
  auto o = opts();
  o.hub.sequential_batch = false;
  o.hub.workers = 2;
  o.hub.max_outstanding = 64;
  constexpr int kthreads = 4;
  constexpr int kiters = 6;
  std::vector<fleet::device_id> ids;
  std::vector<byte_vec> last_frames(kthreads);
  {
    auto st = fleet_store::open(dir(), o);
    for (int t = 0; t < kthreads; ++t) {
      ids.push_back(st.registry->provision(prog_for(adder)));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < kthreads; ++t) {
      threads.emplace_back([&, t] {
        const auto id = ids[static_cast<std::size_t>(t)];
        proto::prover_device dev(*st.registry->find(id)->program,
                                 st.registry->find(id)->key);
        for (int i = 0; i < kiters; ++i) {
          const auto g = st.hub->challenge(id);
          auto frame =
              frame_for(id, g, dev.invoke(g.nonce, args(1, 2)));
          ASSERT_TRUE(st.hub->submit(frame).accepted());
          last_frames[static_cast<std::size_t>(t)] = std::move(frame);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(st.hub->stats().reports_accepted,
              static_cast<std::uint64_t>(kthreads * kiters));
  }
  auto st = fleet_store::open(dir(), o);
  const auto s = st.hub->stats();
  EXPECT_EQ(s.reports_accepted,
            static_cast<std::uint64_t>(kthreads * kiters));
  for (int t = 0; t < kthreads; ++t) {
    EXPECT_EQ(s.per_device.at(ids[static_cast<std::size_t>(t)]).accepted,
              static_cast<std::uint64_t>(kiters));
    EXPECT_EQ(st.hub->submit(last_frames[static_cast<std::size_t>(t)])
                  .error,
              proto::proto_error::replayed_report);
  }
}

TEST_F(store_test, enrolled_devices_keep_their_external_keys) {
  fleet::device_id id = 0;
  const byte_vec psk(32, 0x99);
  {
    auto st = fleet_store::open(dir(), opts());
    id = st.registry->enroll(prog_for(adder), psk);
  }
  auto st = fleet_store::open(dir(), opts());
  ASSERT_NE(st.registry->find(id), nullptr);
  EXPECT_EQ(st.registry->find(id)->key, psk);
  // The restored key is NOT the KDF key — exactly why key material is
  // persisted rather than re-derived.
  EXPECT_NE(st.registry->find(id)->key, st.registry->derive_key(id));
}

// ---------------------------------------------------------------------------
// wal_writer sync policies: the group-commit protocol (PR 8)
// ---------------------------------------------------------------------------

class wal_sync_test : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::path(::testing::TempDir()) /
            ("dialed-wal-sync-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()) +
             ".log");
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  static wal_options with(wal_sync s, std::uint32_t delay_us = 100) {
    wal_options o;
    o.sync = s;
    o.group_max_delay_us = delay_us;
    return o;
  }

  fs::path path_;
};

TEST_F(wal_sync_test, per_record_is_durable_at_append_return) {
  wal_writer w(path_.string(), 0, 0, with(wal_sync::per_record));
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(w.append(byte_vec{static_cast<std::uint8_t>(i)}), i);
    // Horizon tracks the staged LSN exactly: every append fsynced inline.
    EXPECT_EQ(w.synced_lsn(), i);
    w.sync_to(i);  // already covered — must return instantly
  }
  const auto s = w.sync_stats();
  EXPECT_EQ(s.syncs, 5u);
  EXPECT_EQ(s.records, 5u);
  EXPECT_EQ(s.batch_hist[0], 5u);  // all batches of exactly 1
}

TEST_F(wal_sync_test, none_never_fsyncs_but_reports_covered) {
  wal_writer w(path_.string(), 0, 0, with(wal_sync::none));
  for (std::uint64_t i = 1; i <= 4; ++i) w.append(byte_vec{7});
  // `none` treats flush-to-OS as its durability ceiling, so sync_to has
  // nothing to wait for and the counters stay zero.
  EXPECT_EQ(w.staged_lsn(), 4u);
  EXPECT_EQ(w.synced_lsn(), 4u);
  w.sync_to(4);
  const auto s = w.sync_stats();
  EXPECT_EQ(s.syncs, 0u);
  EXPECT_EQ(s.records, 0u);
}

TEST_F(wal_sync_test, group_sync_to_advances_horizon_and_batches) {
  wal_writer w(path_.string(), 0, 0, with(wal_sync::group));
  const auto a = w.append(byte_vec{1});
  const auto b = w.append(byte_vec{2});
  const auto c = w.append(byte_vec{3});
  EXPECT_EQ(c, 3u);
  // Staged but not yet durable.
  EXPECT_EQ(w.staged_lsn(), 3u);
  EXPECT_EQ(w.synced_lsn(), 0u);

  // One sync_to covers everything staged at fsync time — a and b ride
  // along with c's batch.
  w.sync_to(c);
  EXPECT_GE(w.synced_lsn(), c);
  const auto s = w.sync_stats();
  EXPECT_EQ(s.syncs, 1u);
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.batch_hist[2], 1u);  // batch of 3 → (2,4] bucket

  // Already-covered LSNs never trigger another fsync.
  w.sync_to(a);
  w.sync_to(b);
  EXPECT_EQ(w.sync_stats().syncs, 1u);
}

TEST_F(wal_sync_test, reset_to_hands_off_durability_and_keeps_lsns) {
  const auto next = fs::path(path_.string() + ".g1");
  fs::remove(next);
  wal_writer w(path_.string(), 0, 0, with(wal_sync::group));
  w.append(byte_vec{1});
  w.append(byte_vec{2});
  ASSERT_EQ(w.synced_lsn(), 0u);

  // Rotation fsyncs the outgoing file (handoff) and releases the
  // horizon: nothing staged before the rotation can be lost by it.
  w.reset_to(next.string());
  EXPECT_EQ(w.synced_lsn(), 2u);
  EXPECT_EQ(w.records(), 0u);  // per-file count reset...
  EXPECT_EQ(w.append(byte_vec{3}), 3u);  // ...but LSNs stay monotone
  EXPECT_EQ(w.staged_lsn(), 3u);
  w.sync_to(3);
  EXPECT_EQ(w.synced_lsn(), 3u);
  fs::remove(next);
}

TEST_F(wal_sync_test, group_commit_multithread_hammer) {
  // N appender threads each staging then waiting for durability, the
  // way verifier-hub traffic drives the store. Every record must end
  // covered, LSNs must be unique, and the batching counters must add up
  // (records == total appends; syncs <= that, usually far fewer).
  constexpr int kthreads = 8;
  constexpr int kiters = 25;
  wal_writer w(path_.string(), 0, 0, with(wal_sync::group, 200));
  std::vector<std::thread> threads;
  std::array<std::array<std::uint64_t, kiters>, kthreads> lsns{};
  for (int t = 0; t < kthreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kiters; ++i) {
        const auto lsn = w.append(byte_vec{static_cast<std::uint8_t>(t),
                                           static_cast<std::uint8_t>(i)});
        w.sync_to(lsn);
        ASSERT_GE(w.synced_lsn(), lsn);
        lsns[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            lsn;
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr auto total =
      static_cast<std::uint64_t>(kthreads) * kiters;
  EXPECT_EQ(w.staged_lsn(), total);
  EXPECT_EQ(w.synced_lsn(), total);

  // Every LSN unique (the per-thread sequences interleave arbitrarily).
  std::vector<std::uint64_t> flat;
  for (const auto& row : lsns) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  std::sort(flat.begin(), flat.end());
  EXPECT_EQ(std::adjacent_find(flat.begin(), flat.end()), flat.end());
  EXPECT_EQ(flat.front(), 1u);
  EXPECT_EQ(flat.back(), total);

  // Accounting: every record was made durable by exactly one batch.
  const auto s = w.sync_stats();
  EXPECT_EQ(s.records, total);
  EXPECT_GE(s.syncs, 1u);
  EXPECT_LE(s.syncs, total);
  std::uint64_t hist_syncs = 0;
  for (const auto n : s.batch_hist) hist_syncs += n;
  EXPECT_EQ(hist_syncs, s.syncs);

  // And the file itself holds all records intact.
  const auto bytes = *read_file(path_);
  const auto parsed = read_wal(bytes);
  EXPECT_FALSE(parsed.torn_tail);
  EXPECT_EQ(parsed.records.size(), total);
}

// ---------------------------------------------------------------------------
// fleet_store under group commit: the verdict-durability invariant
// ---------------------------------------------------------------------------

TEST_F(store_test, verdict_never_precedes_consumed_nonce_on_disk) {
  // THE group-commit safety property: by the time submit() returns a
  // verdict, the retire record consuming that nonce is durable — the
  // hub's sync_barrier between nonce consumption and crypto guarantees
  // a crash after the verdict can only lose *later* records, so replay
  // protection never regresses.
  auto o = opts();
  o.wal.sync = wal_sync::group;
  auto st = fleet_store::open(dir(), o);
  EXPECT_EQ(st.store->wal_sync_policy(), wal_sync::group);
  const auto id = st.registry->provision(prog_for(adder));
  proto::prover_device dev(*st.registry->find(id)->program,
                           st.registry->find(id)->key);
  const auto g = st.hub->challenge(id);
  ASSERT_TRUE(
      st.hub->submit(frame_for(id, g, dev.invoke(g.nonce, args(20, 22))))
          .accepted());

  // Read the WAL straight off disk while the store is still live: the
  // retire record for g.nonce must already be there.
  const auto maybe_bytes = read_file(wal_file(st.store->generation()));
  ASSERT_TRUE(maybe_bytes.has_value());
  const auto& bytes = *maybe_bytes;
  const auto parsed = read_wal(bytes);
  bool retired_on_disk = false;
  for (const auto& r : parsed.records) {
    if (r.payload.size() > 1 + 4 + g.nonce.size() &&
        r.payload[0] == static_cast<std::uint8_t>(rec::retire) &&
        std::equal(g.nonce.begin(), g.nonce.end(),
                   r.payload.begin() + 1 + 4)) {
      retired_on_disk = true;
    }
  }
  EXPECT_TRUE(retired_on_disk)
      << "verdict returned but consumed nonce not durable";

  // The barrier fsyncs: the store's group-commit counters saw it.
  const auto s = st.store->group_commit();
  EXPECT_GE(s.syncs, 1u);
  EXPECT_GE(s.records, 1u);
}

TEST_F(store_test, group_commit_crash_recovery_matches_per_record) {
  // Same crash-recovery property the per-record suite proves, under
  // group commit: an accepted frame is a replay after reopen, and the
  // counters show batched fsyncs did the journaling.
  auto o = opts();
  o.wal.sync = wal_sync::group;
  byte_vec frame;
  fleet::device_id id = 0;
  {
    auto st = fleet_store::open(dir(), o);
    id = st.registry->provision(prog_for(adder));
    proto::prover_device dev(*st.registry->find(id)->program,
                             st.registry->find(id)->key);
    const auto g = st.hub->challenge(id);
    frame = frame_for(id, g, dev.invoke(g.nonce, args(20, 22)));
    ASSERT_TRUE(st.hub->submit(frame).accepted());
    EXPECT_GE(st.store->group_commit().syncs, 1u);
  }  // crash

  auto st = fleet_store::open(dir(), o);
  EXPECT_EQ(st.hub->submit(frame).error,
            proto::proto_error::replayed_report);
  // Fresh rounds still verify after recovery.
  proto::prover_device dev(*st.registry->find(id)->program,
                           st.registry->find(id)->key);
  const auto g = st.hub->challenge(id);
  const auto r =
      st.hub->submit(frame_for(id, g, dev.invoke(g.nonce, args(6, 7))));
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(r.verdict.replayed_result, 13);
}

TEST_F(store_test, group_commit_concurrent_hub_traffic) {
  // The store-level hammer: concurrent verifier traffic over a
  // group-commit WAL. Each submit crosses the sync_barrier, so
  // concurrent rounds' retire records fold into shared fsyncs.
  auto o = opts();
  o.hub.sequential_batch = false;
  o.hub.workers = 2;
  o.hub.max_outstanding = 64;
  o.wal.sync = wal_sync::group;
  constexpr int kthreads = 4;
  constexpr int kiters = 6;
  std::vector<fleet::device_id> ids;
  {
    auto st = fleet_store::open(dir(), o);
    for (int t = 0; t < kthreads; ++t) {
      ids.push_back(st.registry->provision(prog_for(adder)));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < kthreads; ++t) {
      threads.emplace_back([&, t] {
        const auto id = ids[static_cast<std::size_t>(t)];
        proto::prover_device dev(*st.registry->find(id)->program,
                                 st.registry->find(id)->key);
        for (int i = 0; i < kiters; ++i) {
          const auto g = st.hub->challenge(id);
          ASSERT_TRUE(
              st.hub->submit(frame_for(id, g, dev.invoke(g.nonce,
                                                         args(1, 2))))
                  .accepted());
        }
      });
    }
    for (auto& th : threads) th.join();
    const auto s = st.store->group_commit();
    // Every accepted round's retire record crossed a sync_barrier, so at
    // least that many records are durable — but concurrent barriers fold
    // into shared fsyncs, so syncs can be (and usually is) far fewer.
    EXPECT_GE(s.records, static_cast<std::uint64_t>(kthreads * kiters));
    EXPECT_GE(s.syncs, 1u);
    EXPECT_LE(s.syncs, s.records);
  }
  // Reopen: every journaled event replays, counts agree.
  auto st = fleet_store::open(dir(), o);
  EXPECT_EQ(st.hub->stats().reports_accepted,
            static_cast<std::uint64_t>(kthreads * kiters));
}

}  // namespace
}  // namespace dialed::store
