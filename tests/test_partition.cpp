// Partitioned fleet: consistent-hash routing parity with a bare hub,
// WAL shipping to warm standbys, promotion after a simulated partition
// crash (pre-crash replays rejected, other partitions undisturbed), the
// placement manifest, and online compaction under concurrent traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/store_error.h"
#include "fleet/partition.h"
#include "fleet/verifier_hub.h"
#include "helpers.h"
#include "proto/wire.h"
#include "store/fleet_store.h"
#include "store/ship.h"
#include "store/state_image.h"

namespace dialed::fleet {
namespace {

namespace fs = std::filesystem;

using test::build_op;

constexpr const char* adder = "int op(int a, int b) { return a + b; }";

byte_vec master_key() { return byte_vec(32, 0x42); }

instr::linked_program prog_for(const char* src) {
  return build_op(src, "op", instr::instrumentation::dialed);
}

proto::invocation args(std::uint16_t a0, std::uint16_t a1 = 0) {
  proto::invocation inv;
  inv.args[0] = a0;
  inv.args[1] = a1;
  return inv;
}

byte_vec frame_for(device_id id, const challenge_grant& g,
                   const verifier::attestation_report& rep) {
  proto::frame_info info;
  info.device_id = id;
  info.seq = g.seq;
  return proto::encode_frame(info, rep);
}

/// One full accepted round for `id` through any hub surface; returns the
/// submitted frame so callers can replay it later.
byte_vec run_round(hub_like& hub, device_registry& reg, device_id id,
                   std::uint16_t a, std::uint16_t b) {
  const auto* rec = reg.find(id);
  proto::prover_device dev(*rec->program, rec->key);
  const auto g = hub.challenge(id);
  EXPECT_TRUE(g.ok());
  const auto frame = frame_for(id, g, dev.invoke(g.nonce, args(a, b)));
  const auto r = hub.submit(frame);
  EXPECT_TRUE(r.accepted()) << "device " << id;
  EXPECT_EQ(r.verdict.replayed_result, a + b);
  return frame;
}

/// First device id owned by each partition (scanning up from 1).
std::vector<device_id> one_id_per_partition(
    const partition_router& router) {
  std::vector<device_id> ids(router.partition_count(), 0);
  std::size_t found = 0;
  for (device_id id = 1; found < ids.size(); ++id) {
    const std::size_t p = router.index_of(id);
    if (ids[p] == 0) {
      ids[p] = id;
      ++found;
    }
  }
  return ids;
}

/// Fresh per-test state directory, removed on teardown.
class partition_test : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("dialed-partition-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  store::fleet_store::options opts() const {
    store::fleet_store::options o;
    o.master_key = master_key();
    o.hub.sequential_batch = true;  // single-threaded unless hammering
    return o;
  }

  std::string dir() const { return dir_.string(); }
  std::string sub(const char* name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

TEST(partition_ring, placement_is_deterministic_and_seed_sensitive) {
  auto a = partitioned_fleet::create(4, master_key());
  auto b = partitioned_fleet::create(4, master_key());
  router_config other;
  other.seed ^= 0x1234567;
  auto c = partitioned_fleet::create(4, master_key(), {}, other);

  std::size_t moved = 0;
  for (device_id id = 1; id <= 2000; ++id) {
    // Same (seed, vnodes, N) -> same placement, no coordination.
    EXPECT_EQ(a.index_of(id), b.index_of(id));
    if (a.index_of(id) != c.index_of(id)) ++moved;
  }
  // A different seed is a different ring — most ids move.
  EXPECT_GT(moved, 1000u);
}

TEST(partition_ring, load_is_balanced_across_partitions) {
  auto fleet = partitioned_fleet::create(4, master_key());
  std::array<std::size_t, 4> load{};
  const std::size_t ids = 20000;
  for (device_id id = 1; id <= ids; ++id) ++load[fleet.index_of(id)];
  for (std::size_t p = 0; p < 4; ++p) {
    // 64 vnodes/partition keeps every partition within ~2x of fair
    // share even on adversarially small fleets; this bound is loose.
    EXPECT_GT(load[p], ids / 8) << "partition " << p;
    EXPECT_LT(load[p], ids / 2) << "partition " << p;
  }
}

TEST(partition_ring, single_partition_routes_everything_to_zero) {
  auto fleet = partitioned_fleet::create(1, master_key());
  for (device_id id = 1; id <= 64; ++id) {
    EXPECT_EQ(fleet.index_of(id), 0u);
  }
}

// ---------------------------------------------------------------------------
// Routing parity with a bare hub
// ---------------------------------------------------------------------------

TEST(partition_router, routes_rounds_to_owners_and_aggregates_stats) {
  auto fleet = partitioned_fleet::create(4, master_key());
  const auto ids = one_id_per_partition(fleet.router());
  const auto prog = prog_for(adder);
  for (const auto id : ids) fleet.provision(id, prog);

  byte_vec first_frame;
  for (std::size_t p = 0; p < ids.size(); ++p) {
    const auto frame =
        run_round(fleet.router(), fleet.registry_of(p), ids[p],
                  static_cast<std::uint16_t>(10 + p), 5);
    if (p == 0) first_frame = frame;
    // The round landed on the owning partition and nowhere else.
    EXPECT_EQ(fleet.hub_of(p).stats().reports_accepted, 1u);
  }

  // Replays route back to the same owner and are rejected there.
  EXPECT_EQ(fleet.router().submit(first_frame).error,
            proto::proto_error::replayed_report);

  // Aggregate = sum of partitions; per_device merges disjoint maps.
  const auto total = fleet.router().stats();
  EXPECT_EQ(total.challenges_issued, 4u);
  EXPECT_EQ(total.reports_accepted, 4u);
  EXPECT_EQ(total.rejected_by_error[static_cast<std::size_t>(
                proto::proto_error::replayed_report)],
            1u);
  EXPECT_EQ(total.per_device.size(), 4u);

  const auto parts = fleet.router().partition_stats();
  ASSERT_EQ(parts.size(), 4u);
  std::uint64_t sum = 0;
  for (const auto& s : parts) sum += s.reports_accepted;
  EXPECT_EQ(sum, total.reports_accepted);
}

TEST(partition_router, undecodable_frames_match_a_bare_hub) {
  auto fleet = partitioned_fleet::create(4, master_key());
  auto bare = partitioned_fleet::create(1, master_key());

  // Unpeekable damage (empty, short, wrong magic, wrong version) and a
  // peekable-but-truncated header: the router must surface exactly the
  // typed error a single hub returns — routing adds no error surface.
  const std::vector<byte_vec> damaged = {
      {},                                              // empty
      {0xa7, 0xd1},                                    // short
      {0x00, 0x00, 2, 0, 1, 0, 0, 0, 0, 0},            // bad magic
      {0xa7, 0xd1, 99, 0, 1, 0, 0, 0, 0, 0},           // bad version
      {0xa7, 0xd1, 2, 0, 0x39, 0x05, 0x00, 0x00},      // truncated v2
      {0xa7, 0xd1, 3, 0, 0xff, 0xff, 0xff, 0x7f, 1},   // truncated v2.1
  };
  for (const auto& frame : damaged) {
    const auto via_router = fleet.router().submit(frame);
    const auto via_hub = bare.hub_of(0).submit(frame);
    EXPECT_EQ(via_router.error, via_hub.error)
        << "frame size " << frame.size();
    EXPECT_NE(via_router.error, proto::proto_error::none);
  }
}

TEST(partition_router, batch_scatter_preserves_input_order) {
  auto fleet = partitioned_fleet::create(4, master_key());
  const auto ids = one_id_per_partition(fleet.router());
  const auto prog = prog_for(adder);
  for (const auto id : ids) fleet.provision(id, prog);

  // Three rounds per device, interleaved so consecutive frames belong to
  // different partitions — the scatter path, not the fast path.
  std::vector<byte_vec> frames;
  std::vector<device_id> expect_dev;
  std::vector<std::uint16_t> expect_sum;
  for (std::uint16_t round = 0; round < 3; ++round) {
    for (std::size_t p = 0; p < ids.size(); ++p) {
      const auto* rec = fleet.registry_of(p).find(ids[p]);
      proto::prover_device dev(*rec->program, rec->key);
      const auto g = fleet.router().challenge(ids[p]);
      ASSERT_TRUE(g.ok());
      const std::uint16_t a = static_cast<std::uint16_t>(3 * round + p);
      frames.push_back(
          frame_for(ids[p], g, dev.invoke(g.nonce, args(a, 7))));
      expect_dev.push_back(ids[p]);
      expect_sum.push_back(static_cast<std::uint16_t>(a + 7));
    }
  }
  // A damaged frame mid-batch stays at its index with its typed error.
  const std::size_t bad_at = 5;
  frames.insert(frames.begin() + bad_at, byte_vec{0xde, 0xad});
  expect_dev.insert(expect_dev.begin() + bad_at, 0);
  expect_sum.insert(expect_sum.begin() + bad_at, 0);

  const auto results = fleet.router().verify_batch(frames);
  ASSERT_EQ(results.size(), frames.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == bad_at) {
      EXPECT_NE(results[i].error, proto::proto_error::none);
      continue;
    }
    EXPECT_TRUE(results[i].accepted()) << "frame " << i;
    EXPECT_EQ(results[i].device, expect_dev[i]) << "frame " << i;
    EXPECT_EQ(results[i].verdict.replayed_result, expect_sum[i]);
  }

  const auto total = fleet.router().stats();
  EXPECT_EQ(total.reports_accepted, 12u);
}

TEST(partition_router, tick_fans_out_one_logical_clock) {
  auto fleet = partitioned_fleet::create(3, master_key());
  fleet.router().tick(5);
  EXPECT_EQ(fleet.router().now(), 5u);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(fleet.hub_of(p).now(), 5u);
  }
}

// ---------------------------------------------------------------------------
// Durable layout: the placement manifest
// ---------------------------------------------------------------------------

TEST_F(partition_test, manifest_pins_the_partition_layout) {
  { auto fleet = partitioned_fleet::open(dir(), 2, opts()); }
  // Same layout reopens fine.
  { auto fleet = partitioned_fleet::open(dir(), 2, opts()); }

  // A different partition count / vnode count / seed would re-hash
  // devices onto partitions that never saw their consumed nonces:
  // refused with the typed mismatch, never a silent re-shard.
  try {
    auto fleet = partitioned_fleet::open(dir(), 3, opts());
    FAIL() << "re-partitioned 2x -> 3x";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::partition_mismatch);
  }
  router_config rcfg;
  rcfg.vnodes = 32;
  try {
    auto fleet = partitioned_fleet::open(dir(), 2, opts(), rcfg);
    FAIL() << "reopened with different vnodes";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::partition_mismatch);
  }

  // A corrupted manifest fails closed on its CRC.
  const fs::path manifest =
      fs::path(dir()) / partitioned_fleet::manifest_file;
  auto bytes = *store::read_file(manifest);
  bytes[6] ^= 0xff;
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  try {
    auto fleet = partitioned_fleet::open(dir(), 2, opts());
    FAIL() << "corrupt manifest loaded";
  } catch (const store_error& e) {
    EXPECT_EQ(e.kind(), store_error_kind::crc_mismatch);
  }
}

TEST_F(partition_test, durable_partitions_recover_replay_state) {
  std::vector<device_id> ids;
  std::vector<byte_vec> frames;
  {
    auto fleet = partitioned_fleet::open(dir(), 2, opts());
    ids = one_id_per_partition(fleet.router());
    const auto prog = prog_for(adder);
    for (const auto id : ids) fleet.provision(id, prog);
    for (std::size_t p = 0; p < ids.size(); ++p) {
      frames.push_back(run_round(fleet.router(), fleet.registry_of(p),
                                 ids[p], 20, 22));
    }
  }  // "crash": drop every partition's in-memory objects

  auto fleet = partitioned_fleet::open(dir(), 2, opts());
  // Every partition rebuilt its anti-replay state from its own store.
  for (const auto& frame : frames) {
    EXPECT_EQ(fleet.router().submit(frame).error,
              proto::proto_error::replayed_report);
  }
  for (std::size_t p = 0; p < ids.size(); ++p) {
    run_round(fleet.router(), fleet.registry_of(p), ids[p], 6, 7);
  }
}

// ---------------------------------------------------------------------------
// WAL shipping + promotion
// ---------------------------------------------------------------------------

TEST_F(partition_test, follower_tracks_primary_and_promotes) {
  auto st = store::fleet_store::open(sub("primary"), opts());
  store::wal_shipper shipper;
  store::wal_follower follower(sub("standby"));
  shipper.add_follower(&follower);
  st.store->attach_shipper(&shipper);
  EXPECT_EQ(shipper.snapshots_shipped(), 1u);  // bootstrap snapshot
  EXPECT_TRUE(follower.synced());

  const auto id = st.registry->provision(prog_for(adder));
  const auto pre_crash = run_round(*st.hub, *st.registry, id, 20, 22);
  EXPECT_EQ(follower.records_applied(), shipper.records_shipped());
  EXPECT_EQ(shipper.records_shipped(), st.store->wal_records());
  EXPECT_EQ(follower.generation(), st.store->generation());

  // Compaction ships a fresh snapshot; the follower rolls its log in
  // lockstep and keeps applying post-compaction records.
  st.store->compact();
  EXPECT_EQ(shipper.snapshots_shipped(), 2u);
  EXPECT_EQ(follower.generation(), st.store->generation());
  run_round(*st.hub, *st.registry, id, 6, 7);
  EXPECT_FALSE(follower.error().has_value());

  // Promote: the standby is exactly a restarted primary — pre-crash
  // frames are replays, fresh rounds verify.
  auto promoted = follower.promote(opts());
  EXPECT_EQ(promoted.registry->size(), 1u);
  EXPECT_EQ(promoted.hub->submit(pre_crash).error,
            proto::proto_error::replayed_report);
  run_round(*promoted.hub, *promoted.registry, id, 30, 12);

  // The old primary does not know its standby left: the next shipped
  // record latches the follower into the sticky desync state.
  run_round(*st.hub, *st.registry, id, 1, 2);
  ASSERT_TRUE(follower.error().has_value());
  EXPECT_EQ(follower.error()->kind(), store_error_kind::ship_desync);
  EXPECT_FALSE(follower.synced());
}

TEST(partition_obs, router_merges_and_labels_pipelines) {
  auto fleet = partitioned_fleet::create(3, master_key());
  const auto prog = prog_for(adder);
  const auto ids = one_id_per_partition(fleet.router());
  for (const auto id : ids) fleet.provision(id, prog);

  // One accepted round per partition, plus one replay on partition of
  // ids[0] to seed its rejected ring.
  byte_vec replay;
  for (const auto id : ids) {
    replay = run_round(fleet.router(), fleet.registry_of(
                           fleet.index_of(id)), id, 2, 2);
  }
  EXPECT_EQ(fleet.router().submit(replay).error,
            proto::proto_error::replayed_report);

  // Per-partition snapshots: each partition timed exactly its own
  // report(s); the aggregate is their sum.
  const auto per = fleet.router().partition_pipelines();
  ASSERT_EQ(per.size(), 3u);
  const auto agg = fleet.router().pipeline();
  using obs::stage;
  const auto replay_idx = static_cast<std::size_t>(stage::replay);
  std::uint64_t sum = 0;
  for (const auto& p : per) {
    EXPECT_EQ(p.stages[replay_idx].count, 1u);
    sum += p.stages[replay_idx].count;
  }
  EXPECT_EQ(agg.stages[replay_idx].count, sum);

  // Merged traces carry the partition index the router assigned.
  const auto traces = fleet.router().traces();
  ASSERT_EQ(traces.rejected.size(), 1u);
  const auto last = fleet.index_of(ids.back());
  EXPECT_EQ(traces.rejected[0].partition,
            static_cast<std::uint32_t>(last));
  EXPECT_EQ(traces.slow.size(), 3u);
  for (const auto& t : traces.slow) {
    EXPECT_LT(t.partition, 3u);
    EXPECT_TRUE(t.accepted);
  }
  // Ascending by duration: the router keeps the slowest at the back.
  for (std::size_t i = 1; i < traces.slow.size(); ++i) {
    EXPECT_GE(traces.slow[i].total_ns, traces.slow[i - 1].total_ns);
  }
}

TEST_F(partition_test, shipper_stats_track_lag_and_desync) {
  auto st = store::fleet_store::open(sub("primary"), opts());
  store::wal_shipper shipper;
  store::wal_follower follower(sub("standby"));
  shipper.add_follower(&follower);
  st.store->attach_shipper(&shipper);

  auto ss = shipper.stats();
  EXPECT_EQ(ss.followers, 1u);
  EXPECT_EQ(ss.max_lag_records, 0u);
  EXPECT_FALSE(ss.any_desync);

  const auto id = st.registry->provision(prog_for(adder));
  run_round(*st.hub, *st.registry, id, 3, 4);
  ss = shipper.stats();
  EXPECT_GT(ss.records_shipped, 0u);
  EXPECT_EQ(ss.max_lag_records, 0u);  // synchronous apply: no lag

  // Latch a desync, then keep shipping: the follower stops applying, so
  // its lag now grows with every record while any_desync holds.
  follower.on_record(/*generation=*/999, byte_vec{0xde, 0xad});
  run_round(*st.hub, *st.registry, id, 5, 6);
  ss = shipper.stats();
  EXPECT_TRUE(ss.any_desync);
  EXPECT_EQ(ss.max_lag_records,
            ss.records_shipped - follower.records_applied());
  EXPECT_GT(ss.max_lag_records, 0u);
  st.store->attach_shipper(nullptr);
}

TEST_F(partition_test, shipping_protocol_violations_latch_desync) {
  // A record before any snapshot: nothing to apply it to.
  {
    store::wal_follower f(sub("f1"));
    f.on_record(0, byte_vec{1, 2, 3});
    ASSERT_TRUE(f.error().has_value());
    EXPECT_EQ(f.error()->kind(), store_error_kind::ship_desync);
    EXPECT_THROW((void)f.promote(opts()), store_error);
  }

  // A record for the wrong generation after a good snapshot.
  store::state_image img;
  img.master_key = master_key();
  const auto snapshot = store::serialize_snapshot(img, /*generation=*/4);
  {
    store::wal_follower f(sub("f2"));
    f.on_snapshot(4, snapshot);
    EXPECT_TRUE(f.synced());
    EXPECT_EQ(f.generation(), 4u);
    f.on_record(9, byte_vec{1});
    ASSERT_TRUE(f.error().has_value());
    EXPECT_EQ(f.error()->kind(), store_error_kind::ship_desync);
    // Errors are sticky: later traffic cannot un-desync a follower.
    f.on_snapshot(4, snapshot);
    EXPECT_FALSE(f.synced());
  }

  // A record the promote-time replay would refuse is refused NOW, not
  // at promotion: garbage never reaches the follower's disk.
  {
    store::wal_follower f(sub("f3"));
    f.on_snapshot(4, snapshot);
    f.on_record(4, byte_vec{0xff, 0xff, 0xff});
    ASSERT_TRUE(f.error().has_value());
    EXPECT_EQ(f.records_applied(), 0u);
    EXPECT_THROW((void)f.promote(opts()), store_error);
  }
}

TEST_F(partition_test, promotion_mid_campaign_rejects_pre_crash_replays) {
  auto fleet = partitioned_fleet::open(sub("fleet"), 3, opts());
  const auto ids = one_id_per_partition(fleet.router());
  const auto prog = prog_for(adder);
  for (const auto id : ids) fleet.provision(id, prog);

  // Partition 1 gets a warm standby.
  const std::size_t victim = 1;
  store::wal_shipper shipper;
  store::wal_follower follower(sub("standby"));
  shipper.add_follower(&follower);
  fleet.store_of(victim)->attach_shipper(&shipper);

  // Mid-campaign: K accepted rounds on the victim partition (each one
  // several shipped records), plus live traffic everywhere else.
  std::vector<byte_vec> pre_crash;
  for (std::uint16_t k = 0; k < 3; ++k) {
    pre_crash.push_back(run_round(fleet.router(),
                                  fleet.registry_of(victim), ids[victim],
                                  static_cast<std::uint16_t>(k + 1), 2));
    for (std::size_t p = 0; p < ids.size(); ++p) {
      if (p == victim) continue;
      run_round(fleet.router(), fleet.registry_of(p), ids[p],
                static_cast<std::uint16_t>(k), 9);
    }
  }
  ASSERT_GT(shipper.records_shipped(), 0u);
  ASSERT_TRUE(follower.synced());

  std::vector<hub_stats> before;
  for (std::size_t p = 0; p < ids.size(); ++p) {
    before.push_back(fleet.hub_of(p).stats());
  }

  // Kill partition 1 (drop its hub, registry, catalog and store on the
  // floor) and promote the standby into its slot.
  { auto dead = fleet.release_partition(victim); }
  fleet.install_partition(victim, follower.promote(opts()));

  // THE property, across the router: every report the dead partition
  // accepted is a replay at its successor.
  for (const auto& frame : pre_crash) {
    EXPECT_EQ(fleet.router().submit(frame).error,
              proto::proto_error::replayed_report);
  }
  // And the promoted partition serves fresh rounds.
  run_round(fleet.router(), fleet.registry_of(victim), ids[victim], 20,
            22);

  // The OTHER partitions never noticed: no counter moved during the
  // promotion, and their devices keep attesting.
  for (std::size_t p = 0; p < ids.size(); ++p) {
    if (p == victim) continue;
    const auto after = fleet.hub_of(p).stats();
    EXPECT_EQ(after.challenges_issued, before[p].challenges_issued);
    EXPECT_EQ(after.reports_accepted, before[p].reports_accepted);
    EXPECT_EQ(after.reports_rejected_protocol(),
              before[p].reports_rejected_protocol());
    run_round(fleet.router(), fleet.registry_of(p), ids[p], 3, 4);
  }
}

// ---------------------------------------------------------------------------
// Online compaction under traffic
// ---------------------------------------------------------------------------

TEST_F(partition_test, online_compaction_under_concurrent_traffic) {
  constexpr std::size_t devices = 3;
  constexpr std::size_t rounds = 10;
  std::vector<byte_vec> last_frame(devices);
  std::atomic<std::size_t> accepted{0};
  std::uint64_t compactions = 0;

  {
    auto st = store::fleet_store::open(sub("primary"), opts());
    store::wal_shipper shipper;
    store::wal_follower follower(sub("standby"));
    shipper.add_follower(&follower);
    st.store->attach_shipper(&shipper);

    const auto prog = prog_for(adder);
    std::vector<device_id> ids;
    for (std::size_t d = 0; d < devices; ++d) {
      ids.push_back(st.registry->provision(prog));
    }

    // The point of ONLINE compaction: these run at the same time, with
    // no quiescence handshake, and nothing is lost or torn.
    std::atomic<bool> done{false};
    std::thread compactor([&] {
      while (!done.load(std::memory_order_relaxed) || compactions < 3) {
        st.store->compact();
        ++compactions;
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> workers;
    for (std::size_t d = 0; d < devices; ++d) {
      workers.emplace_back([&, d] {
        const auto* rec = st.registry->find(ids[d]);
        proto::prover_device dev(*rec->program, rec->key);
        for (std::size_t r = 0; r < rounds; ++r) {
          const auto g = st.hub->challenge(ids[d]);
          const auto frame = frame_for(
              ids[d], g,
              dev.invoke(g.nonce,
                         args(static_cast<std::uint16_t>(r), 1)));
          if (st.hub->submit(frame).accepted()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
          last_frame[d] = frame;
        }
      });
    }
    for (auto& w : workers) w.join();
    done.store(true, std::memory_order_relaxed);
    compactor.join();

    EXPECT_EQ(accepted.load(), devices * rounds);
    EXPECT_GE(st.store->generation(), 3u);
    EXPECT_FALSE(follower.error().has_value())
        << follower.error()->what();
    EXPECT_EQ(follower.generation(), st.store->generation());
  }  // "crash" the primary

  // Reopen from the primary's directory: whatever mix of snapshot
  // generation + WAL tail the compactor left behind replays to the full
  // campaign.
  auto st = store::fleet_store::open(sub("primary"), opts());
  EXPECT_EQ(st.registry->size(), devices);
  EXPECT_EQ(st.hub->stats().reports_accepted, devices * rounds);
  for (const auto& frame : last_frame) {
    EXPECT_EQ(st.hub->submit(frame).error,
              proto::proto_error::replayed_report);
  }
}

}  // namespace
}  // namespace dialed::fleet
