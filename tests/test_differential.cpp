// Differential property testing: randomly generated mini-C operations are
// compiled, instrumented at the DIALED level, executed on the emulated MCU
// under the full attestation flow, and their results compared against a
// host-side reference evaluator with the same 16-bit semantics. On top of
// result equality, every generated program's report must verify — i.e. the
// abstract execution must reproduce the run exactly.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "helpers.h"
#include "proto/session.h"

namespace dialed {
namespace {

using test::build_op;
using test::test_key;

/// 16-bit semantics helpers (mini-C: int is 16-bit; >> is logical).
std::uint16_t w(std::int32_t v) { return static_cast<std::uint16_t>(v); }
std::int16_t s16(std::uint16_t v) { return static_cast<std::int16_t>(v); }

/// A tiny expression AST mirrored as text (device) and as evaluation
/// (host). Variables: a,b,c,d plus accumulated locals x0..xk.
class program_generator {
 public:
  explicit program_generator(std::uint64_t seed) : rng_(seed) {}

  struct program {
    std::string source;
    std::uint16_t expected;
  };

  program generate(std::uint16_t a, std::uint16_t b, std::uint16_t c,
                   std::uint16_t d) {
    vars_ = {{"a", a}, {"b", b}, {"c", c}, {"d", d}};
    std::string body;
    const int locals = 2 + static_cast<int>(rng_() % 4);
    for (int i = 0; i < locals; ++i) {
      auto [text, value] = expr(2);
      const std::string name = "x" + std::to_string(i);
      body += "  int " + name + " = " + text + ";\n";
      vars_.emplace_back(name, value);
      // Occasionally add a conditional update.
      if (rng_() % 3 == 0) {
        auto [cond_text, cond_value] = expr(1);
        auto [then_text, then_value] = expr(1);
        body += "  if (" + cond_text + ") { " + name + " = " + then_text +
                "; }\n";
        if (cond_value != 0) vars_.back().second = then_value;
      }
    }
    // A bounded accumulation loop (device and host agree on trip count).
    const int trips = 1 + static_cast<int>(rng_() % 6);
    auto [step_text, step_value] = expr(1);
    body += "  int acc = 0;\n  int i;\n";
    body += "  for (i = 0; i < " + std::to_string(trips) + "; i++) {\n";
    body += "    acc = acc + (" + step_text + ") + i;\n  }\n";
    std::uint16_t acc = 0;
    for (int i = 0; i < trips; ++i) {
      acc = w(acc + step_value + i);
    }
    vars_.emplace_back("acc", acc);

    auto [ret_text, ret_value] = expr(2);
    program p;
    p.source = "int op(int a, int b, int c, int d) {\n" + body +
               "  return " + ret_text + ";\n}\n";
    p.expected = ret_value;
    return p;
  }

 private:
  /// Generate an expression of bounded depth; returns {text, value}.
  std::pair<std::string, std::uint16_t> expr(int depth) {
    if (depth == 0 || rng_() % 4 == 0) return leaf();
    switch (rng_() % 9) {
      case 0: return binary(depth, "+", [](auto l, auto r) { return w(l + r); });
      case 1: return binary(depth, "-", [](auto l, auto r) { return w(l - r); });
      case 2: return binary(depth, "*", [](auto l, auto r) { return w(l * r); });
      case 3: return binary(depth, "&", [](auto l, auto r) { return w(l & r); });
      case 4: return binary(depth, "|", [](auto l, auto r) { return w(l | r); });
      case 5: return binary(depth, "^", [](auto l, auto r) { return w(l ^ r); });
      case 6: {  // logical shift by a small constant
        auto [lt, lv] = expr(depth - 1);
        const int k = static_cast<int>(rng_() % 8);
        if (rng_() % 2 == 0) {
          return {"(" + lt + " << " + std::to_string(k) + ")", w(lv << k)};
        }
        return {"(" + lt + " >> " + std::to_string(k) + ")",
                static_cast<std::uint16_t>(lv >> k)};
      }
      case 7: {  // signed comparison -> 0/1
        auto [lt, lv] = expr(depth - 1);
        auto [rt, rv] = expr(depth - 1);
        switch (rng_() % 3) {
          case 0:
            return {"(" + lt + " < " + rt + ")",
                    static_cast<std::uint16_t>(s16(lv) < s16(rv) ? 1 : 0)};
          case 1:
            return {"(" + lt + " == " + rt + ")",
                    static_cast<std::uint16_t>(lv == rv ? 1 : 0)};
          default:
            return {"(" + lt + " >= " + rt + ")",
                    static_cast<std::uint16_t>(s16(lv) >= s16(rv) ? 1 : 0)};
        }
      }
      default: {  // unary
        auto [lt, lv] = expr(depth - 1);
        if (rng_() % 2 == 0) return {"(-" + lt + ")", w(-s16(lv))};
        return {"(~" + lt + ")", static_cast<std::uint16_t>(~lv)};
      }
    }
  }

  std::pair<std::string, std::uint16_t> leaf() {
    if (rng_() % 2 == 0 || vars_.empty()) {
      const std::uint16_t v = static_cast<std::uint16_t>(rng_() % 200);
      return {std::to_string(v), v};
    }
    const auto& var = vars_[rng_() % vars_.size()];
    return {var.first, var.second};
  }

  template <typename F>
  std::pair<std::string, std::uint16_t> binary(int depth, const char* op,
                                               F eval) {
    auto [lt, lv] = expr(depth - 1);
    auto [rt, rv] = expr(depth - 1);
    return {"(" + lt + " " + op + " " + rt + ")", eval(lv, rv)};
  }

  std::mt19937_64 rng_;
  std::vector<std::pair<std::string, std::uint16_t>> vars_;
};

class differential : public ::testing::TestWithParam<int> {};

TEST_P(differential, device_matches_host_and_report_verifies) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  program_generator gen(seed * 0x9e3779b97f4a7c15ull + 1);
  std::mt19937_64 arg_rng(seed);
  const std::uint16_t a = static_cast<std::uint16_t>(arg_rng() % 500);
  const std::uint16_t b = static_cast<std::uint16_t>(arg_rng() % 500);
  const std::uint16_t c = static_cast<std::uint16_t>(arg_rng());
  const std::uint16_t d = static_cast<std::uint16_t>(arg_rng() % 17);
  const auto prog_src = gen.generate(a, b, c, d);

  const auto prog =
      build_op(prog_src.source, "op", instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());
  proto::invocation inv;
  inv.args = {a, b, c, d, 0, 0, 0, 0};
  const auto rep = dev.invoke(vrf.new_challenge(), inv);
  ASSERT_EQ(rep.halt_code, emu::HALT_CLEAN) << prog_src.source;
  EXPECT_EQ(rep.claimed_result, prog_src.expected) << prog_src.source;

  const auto v = vrf.check(rep);
  EXPECT_TRUE(v.accepted) << prog_src.source;
  EXPECT_EQ(v.replayed_result, prog_src.expected) << prog_src.source;
}

INSTANTIATE_TEST_SUITE_P(seeds, differential, ::testing::Range(0, 48));

}  // namespace
}  // namespace dialed
