// Differential property testing: randomly generated mini-C operations are
// compiled, instrumented at the DIALED level, executed on the emulated MCU
// under the full attestation flow, and their results compared against a
// host-side reference evaluator with the same 16-bit semantics. On top of
// result equality, every generated program's report must verify — i.e. the
// abstract execution must reproduce the run exactly.
// Second differential axis (wire v2.1): every round of every app is
// verified TWICE — once as a v2 full frame, once as a v2.1 delta frame —
// against two identically-seeded hubs, and the complete attest_results
// must match field for field. Delta encoding is transport compression;
// any observable verdict difference is a bug.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "helpers.h"
#include "proto/session.h"

namespace dialed {
namespace {

using test::build_op;
using test::test_key;

/// 16-bit semantics helpers (mini-C: int is 16-bit; >> is logical).
std::uint16_t w(std::int32_t v) { return static_cast<std::uint16_t>(v); }
std::int16_t s16(std::uint16_t v) { return static_cast<std::int16_t>(v); }

/// A tiny expression AST mirrored as text (device) and as evaluation
/// (host). Variables: a,b,c,d plus accumulated locals x0..xk.
class program_generator {
 public:
  explicit program_generator(std::uint64_t seed) : rng_(seed) {}

  struct program {
    std::string source;
    std::uint16_t expected;
  };

  program generate(std::uint16_t a, std::uint16_t b, std::uint16_t c,
                   std::uint16_t d) {
    vars_ = {{"a", a}, {"b", b}, {"c", c}, {"d", d}};
    std::string body;
    const int locals = 2 + static_cast<int>(rng_() % 4);
    for (int i = 0; i < locals; ++i) {
      auto [text, value] = expr(2);
      const std::string name = "x" + std::to_string(i);
      body += "  int " + name + " = " + text + ";\n";
      vars_.emplace_back(name, value);
      // Occasionally add a conditional update.
      if (rng_() % 3 == 0) {
        auto [cond_text, cond_value] = expr(1);
        auto [then_text, then_value] = expr(1);
        body += "  if (" + cond_text + ") { " + name + " = " + then_text +
                "; }\n";
        if (cond_value != 0) vars_.back().second = then_value;
      }
    }
    // A bounded accumulation loop (device and host agree on trip count).
    const int trips = 1 + static_cast<int>(rng_() % 6);
    auto [step_text, step_value] = expr(1);
    body += "  int acc = 0;\n  int i;\n";
    body += "  for (i = 0; i < " + std::to_string(trips) + "; i++) {\n";
    body += "    acc = acc + (" + step_text + ") + i;\n  }\n";
    std::uint16_t acc = 0;
    for (int i = 0; i < trips; ++i) {
      acc = w(acc + step_value + i);
    }
    vars_.emplace_back("acc", acc);

    auto [ret_text, ret_value] = expr(2);
    program p;
    p.source = "int op(int a, int b, int c, int d) {\n" + body +
               "  return " + ret_text + ";\n}\n";
    p.expected = ret_value;
    return p;
  }

 private:
  /// Generate an expression of bounded depth; returns {text, value}.
  std::pair<std::string, std::uint16_t> expr(int depth) {
    if (depth == 0 || rng_() % 4 == 0) return leaf();
    switch (rng_() % 9) {
      case 0: return binary(depth, "+", [](auto l, auto r) { return w(l + r); });
      case 1: return binary(depth, "-", [](auto l, auto r) { return w(l - r); });
      case 2: return binary(depth, "*", [](auto l, auto r) { return w(l * r); });
      case 3: return binary(depth, "&", [](auto l, auto r) { return w(l & r); });
      case 4: return binary(depth, "|", [](auto l, auto r) { return w(l | r); });
      case 5: return binary(depth, "^", [](auto l, auto r) { return w(l ^ r); });
      case 6: {  // logical shift by a small constant
        auto [lt, lv] = expr(depth - 1);
        const int k = static_cast<int>(rng_() % 8);
        if (rng_() % 2 == 0) {
          return {"(" + lt + " << " + std::to_string(k) + ")", w(lv << k)};
        }
        return {"(" + lt + " >> " + std::to_string(k) + ")",
                static_cast<std::uint16_t>(lv >> k)};
      }
      case 7: {  // signed comparison -> 0/1
        auto [lt, lv] = expr(depth - 1);
        auto [rt, rv] = expr(depth - 1);
        switch (rng_() % 3) {
          case 0:
            return {"(" + lt + " < " + rt + ")",
                    static_cast<std::uint16_t>(s16(lv) < s16(rv) ? 1 : 0)};
          case 1:
            return {"(" + lt + " == " + rt + ")",
                    static_cast<std::uint16_t>(lv == rv ? 1 : 0)};
          default:
            return {"(" + lt + " >= " + rt + ")",
                    static_cast<std::uint16_t>(s16(lv) >= s16(rv) ? 1 : 0)};
        }
      }
      default: {  // unary
        auto [lt, lv] = expr(depth - 1);
        if (rng_() % 2 == 0) return {"(-" + lt + ")", w(-s16(lv))};
        return {"(~" + lt + ")", static_cast<std::uint16_t>(~lv)};
      }
    }
  }

  std::pair<std::string, std::uint16_t> leaf() {
    if (rng_() % 2 == 0 || vars_.empty()) {
      const std::uint16_t v = static_cast<std::uint16_t>(rng_() % 200);
      return {std::to_string(v), v};
    }
    const auto& var = vars_[rng_() % vars_.size()];
    return {var.first, var.second};
  }

  template <typename F>
  std::pair<std::string, std::uint16_t> binary(int depth, const char* op,
                                               F eval) {
    auto [lt, lv] = expr(depth - 1);
    auto [rt, rv] = expr(depth - 1);
    return {"(" + lt + " " + op + " " + rt + ")", eval(lv, rv)};
  }

  std::mt19937_64 rng_;
  std::vector<std::pair<std::string, std::uint16_t>> vars_;
};

class differential : public ::testing::TestWithParam<int> {};

TEST_P(differential, device_matches_host_and_report_verifies) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  program_generator gen(seed * 0x9e3779b97f4a7c15ull + 1);
  std::mt19937_64 arg_rng(seed);
  const std::uint16_t a = static_cast<std::uint16_t>(arg_rng() % 500);
  const std::uint16_t b = static_cast<std::uint16_t>(arg_rng() % 500);
  const std::uint16_t c = static_cast<std::uint16_t>(arg_rng());
  const std::uint16_t d = static_cast<std::uint16_t>(arg_rng() % 17);
  const auto prog_src = gen.generate(a, b, c, d);

  const auto prog =
      build_op(prog_src.source, "op", instr::instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::verifier_session vrf(prog, test_key());
  proto::invocation inv;
  inv.args = {a, b, c, d, 0, 0, 0, 0};
  const auto rep = dev.invoke(vrf.new_challenge(), inv);
  ASSERT_EQ(rep.halt_code, emu::HALT_CLEAN) << prog_src.source;
  EXPECT_EQ(rep.claimed_result, prog_src.expected) << prog_src.source;

  const auto v = vrf.check(rep);
  EXPECT_TRUE(v.accepted) << prog_src.source;
  EXPECT_EQ(v.replayed_result, prog_src.expected) << prog_src.source;
}

INSTANTIATE_TEST_SUITE_P(seeds, differential, ::testing::Range(0, 48));

// ---------------------------------------------------------------------------
// Wire v2.1 vs v2: verdict-equivalence across the four apps
// ---------------------------------------------------------------------------

void expect_result_eq(const fleet::attest_result& a,
                      const fleet::attest_result& b, const char* label,
                      int round) {
  ASSERT_EQ(a.error, b.error) << label << " round " << round;
  EXPECT_EQ(a.device, b.device) << label << " round " << round;
  EXPECT_EQ(a.seq, b.seq) << label << " round " << round;
  const auto& va = a.verdict;
  const auto& vb = b.verdict;
  EXPECT_EQ(va.accepted, vb.accepted) << label << " round " << round;
  EXPECT_EQ(va.replayed_result, vb.replayed_result)
      << label << " round " << round;
  EXPECT_EQ(va.replay_instructions, vb.replay_instructions)
      << label << " round " << round;
  EXPECT_EQ(va.log_slots_consumed, vb.log_slots_consumed)
      << label << " round " << round;
  EXPECT_EQ(va.log_bytes, vb.log_bytes) << label << " round " << round;
  EXPECT_EQ(va.result_tainted, vb.result_tainted)
      << label << " round " << round;
  ASSERT_EQ(va.findings.size(), vb.findings.size())
      << label << " round " << round;
  for (std::size_t i = 0; i < va.findings.size(); ++i) {
    EXPECT_EQ(va.findings[i].kind, vb.findings[i].kind) << label;
    EXPECT_EQ(va.findings[i].detail, vb.findings[i].detail) << label;
    EXPECT_EQ(va.findings[i].pc, vb.findings[i].pc) << label;
    EXPECT_EQ(va.findings[i].addr, vb.findings[i].addr) << label;
  }
  ASSERT_EQ(va.annotated_log.size(), vb.annotated_log.size()) << label;
  for (std::size_t i = 0; i < va.annotated_log.size(); ++i) {
    EXPECT_EQ(va.annotated_log[i].slot, vb.annotated_log[i].slot) << label;
    EXPECT_EQ(va.annotated_log[i].value, vb.annotated_log[i].value) << label;
    EXPECT_EQ(va.annotated_log[i].kind, vb.annotated_log[i].kind) << label;
  }
  ASSERT_EQ(va.io_trace.size(), vb.io_trace.size()) << label;
  for (std::size_t i = 0; i < va.io_trace.size(); ++i) {
    EXPECT_EQ(va.io_trace[i].addr, vb.io_trace[i].addr) << label;
    EXPECT_EQ(va.io_trace[i].value, vb.io_trace[i].value) << label;
    EXPECT_EQ(va.io_trace[i].pc, vb.io_trace[i].pc) << label;
    EXPECT_EQ(va.io_trace[i].tainted, vb.io_trace[i].tainted) << label;
  }
}

/// One round for `app` on two lockstep fleets: hub A gets the report as
/// a v2 full frame, hub B gets it through the delta emitter (v2.1 once a
/// baseline exists). `mutate_report` lets attack rounds tamper with the
/// report after the device produced it.
struct lockstep_fleet {
  explicit lockstep_fleet(const instr::linked_program& prog)
      : reg_a(test_key()), reg_b(test_key()) {
    fleet::hub_config cfg;
    cfg.sequential_batch = true;
    cfg.shards = 1;
    cfg.seed = 0x00d1a1ed5eedull;
    id_a = reg_a.provision(prog);
    id_b = reg_b.provision(prog);
    hub_a.emplace(reg_a, cfg);
    hub_b.emplace(reg_b, cfg);
    dev = std::make_unique<proto::prover_device>(prog,
                                                 reg_a.derive_key(id_a));
  }

  /// Runs a round; returns {full-frame result, delta-frame result} after
  /// asserting both fleets issued the identical challenge.
  std::pair<fleet::attest_result, fleet::attest_result> round(
      const proto::invocation& inv,
      const std::function<void(verifier::attestation_report&)>&
          mutate_report = {}) {
    const auto ga = hub_a->challenge(id_a);
    const auto gb = hub_b->challenge(id_b);
    // Same master key, same provision order, same hub seed: the two
    // fleets are bit-identical, so the frames are comparable.
    EXPECT_EQ(ga.nonce, gb.nonce);
    EXPECT_EQ(ga.seq, gb.seq);
    auto rep = dev->invoke(ga.nonce, inv);
    if (mutate_report) mutate_report(rep);

    proto::frame_info info;
    info.device_id = id_a;
    info.seq = ga.seq;
    const auto full = proto::encode_frame(info, rep);
    const auto delta = emitter.encode(id_b, gb.seq, rep);
    total_full_bytes += full.size();
    total_delta_bytes += delta.size();

    const auto ra = hub_a->submit(full);
    const auto rb = hub_b->submit(delta);
    emitter.note_result(id_b, gb.seq, rep, rb.error, rb.accepted());
    return {ra, rb};
  }

  fleet::device_registry reg_a, reg_b;
  fleet::device_id id_a = 0, id_b = 0;
  std::optional<fleet::verifier_hub> hub_a, hub_b;
  std::unique_ptr<proto::prover_device> dev;
  proto::delta_emitter emitter;
  std::size_t total_full_bytes = 0;
  std::size_t total_delta_bytes = 0;
};

TEST(differential_wire, delta_frames_match_full_frames_on_all_four_apps) {
  auto specs = apps::evaluation_apps();  // SyringePump, FireSensor, Ranger
  specs.push_back(apps::door_lock_app());
  ASSERT_EQ(specs.size(), 4u);
  constexpr int rounds = 5;
  for (const auto& app : specs) {
    const auto prog = apps::build_app(app, instr::instrumentation::dialed);
    lockstep_fleet fleet(prog);
    for (int r = 0; r < rounds; ++r) {
      const auto [ra, rb] = fleet.round(app.representative_input);
      expect_result_eq(ra, rb, app.name.c_str(), r);
      EXPECT_TRUE(ra.accepted()) << app.name << " round " << r;
    }
    // Steady-state polling is the delta codec's home turf: the emitter
    // must have gone v2.1 after round 1 and saved real transport bytes.
    EXPECT_GE(fleet.emitter.transport_stats().delta_frames,
              static_cast<std::uint64_t>(rounds - 1))
        << app.name;
    EXPECT_LT(fleet.total_delta_bytes, fleet.total_full_bytes) << app.name;
  }
}

TEST(differential_wire, attack_and_forged_paths_match_too) {
  // The finding-heavy paths must classify identically through delta
  // frames: a forged result claim (every app), the DoorLock overflow
  // (data-only attack), and rejected rounds must leave BOTH baselines
  // unchanged so later benign deltas still verify.
  auto specs = apps::evaluation_apps();
  specs.push_back(apps::door_lock_app());
  for (const auto& app : specs) {
    const auto prog = apps::build_app(app, instr::instrumentation::dialed);
    lockstep_fleet fleet(prog);
    // Round 0: benign, establishes the baseline on both sides.
    {
      const auto [ra, rb] = fleet.round(app.representative_input);
      expect_result_eq(ra, rb, app.name.c_str(), 0);
      ASSERT_TRUE(ra.accepted()) << app.name;
    }
    // Round 1: forged result claim — rejected identically (and as a
    // DELTA frame on hub B: tampering happened after OR capture).
    {
      const auto [ra, rb] = fleet.round(
          app.representative_input,
          [](verifier::attestation_report& rep) {
            rep.claimed_result ^= 0x5a5a;
          });
      expect_result_eq(ra, rb, app.name.c_str(), 1);
      EXPECT_FALSE(ra.accepted()) << app.name;
      EXPECT_TRUE(ra.verdict.has(verifier::attack_kind::result_forged))
          << app.name;
    }
    // Round 2: a tampered OR byte — MAC breaks identically.
    {
      const auto [ra, rb] = fleet.round(
          app.representative_input,
          [](verifier::attestation_report& rep) {
            rep.or_bytes[rep.or_bytes.size() / 2] ^= 0x01;
          });
      expect_result_eq(ra, rb, app.name.c_str(), 2);
      EXPECT_FALSE(ra.accepted()) << app.name;
      EXPECT_TRUE(ra.verdict.has(verifier::attack_kind::mac_invalid))
          << app.name;
    }
    // Round 3: benign again — the rejected rounds must not have moved
    // either side's baseline, so the delta still reconstructs.
    {
      const auto [ra, rb] = fleet.round(app.representative_input);
      expect_result_eq(ra, rb, app.name.c_str(), 3);
      EXPECT_TRUE(ra.accepted()) << app.name;
    }
  }
}

TEST(differential_wire, app_attack_payloads_classify_identically) {
  // Real attack inputs (not post-hoc tampering): the DoorLock PIN
  // overflow (data-only) and the Fig. 1 syringe-pump stack smash
  // (control-flow violation, the CFA path) — interleaved with benign
  // rounds so attack verdicts ride DELTA frames against a live baseline.
  {
    const auto app = apps::door_lock_app();
    const auto prog = apps::build_app(app, instr::instrumentation::dialed);
    lockstep_fleet fleet(prog);
    const auto [b0a, b0b] = fleet.round(app.representative_input);
    expect_result_eq(b0a, b0b, "door-lock-benign", 0);
    ASSERT_TRUE(b0a.accepted());
    const auto [ra, rb] =
        fleet.round(apps::door_lock_attack({9, 9, 9, 9}));
    expect_result_eq(ra, rb, "door-lock-attack", 1);
    EXPECT_FALSE(ra.accepted());
  }
  {
    const auto app = apps::fig1_app();
    const auto prog = apps::build_app(app, instr::instrumentation::dialed);
    lockstep_fleet fleet(prog);
    const auto [b0a, b0b] = fleet.round(apps::fig1_benign(5));
    expect_result_eq(b0a, b0b, "fig1-benign", 0);
    ASSERT_TRUE(b0a.accepted());
    const auto [ra, rb] = fleet.round(apps::fig1_attack(prog, 15));
    expect_result_eq(ra, rb, "fig1-cfa-attack", 1);
    EXPECT_FALSE(ra.accepted());
    EXPECT_TRUE(
        ra.verdict.has(verifier::attack_kind::control_flow_attack) ||
        ra.verdict.has(verifier::attack_kind::replay_divergence))
        << "stack smash must surface through the replay";
    // And the fleet recovers: benign round after the attack.
    const auto [b1a, b1b] = fleet.round(apps::fig1_benign(3));
    expect_result_eq(b1a, b1b, "fig1-benign-after", 2);
    EXPECT_TRUE(b1a.accepted());
  }
}

}  // namespace
}  // namespace dialed
