// Verifier: MAC/EXEC gating, abstract execution, and every attack-detection
// class (control-flow, data-only, forgery, tamper, policies).
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "rot/attest.h"
#include "verifier/verifier.h"

namespace dialed::verifier {
namespace {

using test::build_op;
using test::test_key;

struct bench_rig {
  instr::linked_program prog;
  std::unique_ptr<proto::prover_device> dev;
  std::unique_ptr<op_verifier> vrf;

  bench_rig(const std::string& src,
            instr::instrumentation mode = instr::instrumentation::dialed)
      : prog(build_op(src, "op", mode)) {
    dev = std::make_unique<proto::prover_device>(prog, test_key());
    vrf = std::make_unique<op_verifier>(prog, test_key());
  }

  attestation_report invoke(const proto::invocation& inv,
                            std::uint8_t chal_seed = 7) {
    std::array<std::uint8_t, 16> chal{};
    chal.fill(chal_seed);
    return dev->invoke(chal, inv);
  }
};

proto::invocation args(std::uint16_t a0 = 0, std::uint16_t a1 = 0) {
  proto::invocation inv;
  inv.args[0] = a0;
  inv.args[1] = a1;
  return inv;
}

constexpr const char* adder = "int op(int a, int b) { return a + b; }";

// ---------------------------------------------------------------------------
// Happy path
// ---------------------------------------------------------------------------

TEST(verify, benign_run_accepted_with_replayed_result) {
  bench_rig rig(adder);
  const auto rep = rig.invoke(args(40, 2));
  const auto v = rig.vrf->verify(rep);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.replayed_result, 42);
  EXPECT_GT(v.replay_instructions, 0u);
  EXPECT_GE(v.log_slots_consumed, 9);
}

TEST(verify, annotated_log_classifies_entries) {
  bench_rig rig(
      "int g = 5;"
      "int op(int a, int b) { return g + a; }");
  const auto v = rig.vrf->verify(rig.invoke(args(1, 2)));
  ASSERT_TRUE(v.accepted);
  int saved_sp = 0, entry_args = 0, cf = 0, inputs = 0;
  for (const auto& e : v.annotated_log) {
    switch (e.kind) {
      case logfmt::entry_kind::saved_sp: ++saved_sp; break;
      case logfmt::entry_kind::entry_arg: ++entry_args; break;
      case logfmt::entry_kind::cf_destination: ++cf; break;
      case logfmt::entry_kind::data_input: ++inputs; break;
      default: break;
    }
  }
  EXPECT_EQ(saved_sp, 1);
  EXPECT_EQ(entry_args, 8);
  EXPECT_GE(cf, 1);    // at least the final ret
  EXPECT_GE(inputs, 1);  // the global read
}

TEST(verify, challenge_binding_enforced_when_requested) {
  bench_rig rig(adder);
  const auto rep = rig.invoke(args(1, 2), 0x11);
  std::array<std::uint8_t, 16> expected{};
  expected.fill(0x11);
  EXPECT_TRUE(rig.vrf->verify(rep, expected).accepted);
  expected.fill(0x22);
  const auto v = rig.vrf->verify(rep, expected);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::stale_challenge));
}

// ---------------------------------------------------------------------------
// Forgery and tamper classes
// ---------------------------------------------------------------------------

TEST(attack, flipped_mac_bit_rejected) {
  bench_rig rig(adder);
  auto rep = rig.invoke(args(1, 2));
  rep.mac[5] ^= 0x10;
  const auto v = rig.vrf->verify(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::mac_invalid));
}

TEST(attack, tampered_or_bytes_break_the_mac) {
  bench_rig rig(adder);
  auto rep = rig.invoke(args(1, 2));
  rep.or_bytes[rep.or_bytes.size() - 3] ^= 0xff;
  const auto v = rig.vrf->verify(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::mac_invalid));
}

TEST(attack, forged_logs_with_valid_mac_caught_by_replay) {
  // Even if an attacker had a MAC oracle (simulated here with the real
  // key), logs inconsistent with the program are caught by abstract
  // execution: we flip a CF entry and re-MAC.
  bench_rig rig(adder);
  auto rep = rig.invoke(args(1, 2));
  rep.or_bytes[rep.or_bytes.size() - 20] ^= 0x01;  // inside consumed slots
  rot::attest_input in;
  in.er_min = rep.er_min;
  in.er_max = rep.er_max;
  in.or_min = rep.or_min;
  in.or_max = rep.or_max;
  in.exec = true;
  in.challenge = rep.challenge;
  const auto er = rig.prog.er_bytes();
  in.er_bytes = er;
  in.or_bytes = rep.or_bytes;
  rep.mac = rot::compute_attestation_mac(test_key(), in);
  const auto v = rig.vrf->verify(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::replay_divergence) ||
              v.has(attack_kind::control_flow_attack) ||
              v.has(attack_kind::uninitialized_read));
}

TEST(attack, modified_code_rejected_via_mac) {
  bench_rig rig(adder);
  proto::invocation inv = args(1, 2);
  const std::uint16_t fail_block = rig.prog.image.symbol("__er_fail");
  inv.before_run = [&](emu::machine& m) {
    // Patch the (benignly unreached) abort handler inside ER: execution is
    // unaffected, but SW-Att hashes the modified code and Vrf's reference
    // MAC no longer matches.
    m.get_bus().poke16(static_cast<std::uint16_t>(fail_block + 2), 0x4303);
  };
  const auto rep = rig.invoke(inv);
  const auto v = rig.vrf->verify(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::mac_invalid));
}

TEST(attack, interrupt_mid_op_clears_exec_and_is_rejected) {
  bench_rig rig(
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + i; } return s; }");
  proto::invocation inv = args(10);
  bool fired = false;
  inv.on_step = [&](emu::machine& m, std::uint16_t pc) {
    if (!fired && pc > rig.prog.er_min + 40 && pc < rig.prog.er_max) {
      fired = true;
      m.get_cpu().regs()[isa::REG_SR] |= isa::SR_GIE;
      m.get_cpu().request_interrupt(0);
    }
  };
  // Point the ISR at crt0's post-op continuation so the device still
  // attests (with EXEC=0) and halts instead of re-running the op.
  inv.before_run = [&](emu::machine& m) {
    m.get_bus().poke16(m.map().ivt_start, rig.prog.op_return_addr);
  };
  const auto rep = rig.invoke(inv);
  EXPECT_FALSE(rep.exec);
  const auto v = rig.vrf->verify(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::exec_cleared) ||
              v.has(attack_kind::mac_invalid));
}

TEST(attack, dma_mid_op_clears_exec_and_is_rejected) {
  bench_rig rig(
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + i; } return s; }");
  proto::invocation inv = args(10);
  bool fired = false;
  inv.on_step = [&](emu::machine& m, std::uint16_t pc) {
    if (!fired && pc > rig.prog.er_min + 40 && pc < rig.prog.er_max) {
      fired = true;
      m.dma_write16(0x0400, 0xdead);
    }
  };
  const auto rep = rig.invoke(inv);
  EXPECT_FALSE(rep.exec);
  EXPECT_FALSE(rig.vrf->verify(rep).accepted);
}

TEST(attack, forged_result_mailbox_detected) {
  bench_rig rig(adder);
  auto rep = rig.invoke(args(30, 12));
  rep.claimed_result = 9999;  // the mailbox is NOT covered by the MAC
  const auto v = rig.vrf->verify(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::result_forged));
  EXPECT_EQ(v.replayed_result, 42);  // Vrf still learns the true output
}

TEST(attack, wrong_bounds_rejected_before_anything_else) {
  bench_rig rig(adder);
  auto rep = rig.invoke(args(1, 2));
  rep.er_max += 2;
  const auto v = rig.vrf->verify(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::bounds_mismatch));
}

TEST(attack, wrong_key_rejected) {
  bench_rig rig(adder);
  const auto rep = rig.invoke(args(1, 2));
  op_verifier wrong(rig.prog, byte_vec(32, 0x77));
  const auto v = wrong.verify(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::mac_invalid));
}

// ---------------------------------------------------------------------------
// Runtime attacks through the op's own vulnerabilities
// ---------------------------------------------------------------------------

TEST(attack, oob_global_write_classified_data_only) {
  bench_rig rig(
      "int buf[4];"
      "int tail = 1111;"
      "int op(int i, int v) { buf[i] = v; return tail; }");
  // In-bounds: accepted.
  EXPECT_TRUE(rig.vrf->verify(rig.invoke(args(3, 5))).accepted);
  // Out-of-bounds write lands on `tail`: data-only attack.
  const auto v = rig.vrf->verify(rig.invoke(args(4, 2222)));
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::data_only_attack));
}

TEST(attack, oob_local_read_classified_data_only) {
  bench_rig rig(
      "int op(int i) { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3;"
      "  return a[i]; }");
  EXPECT_TRUE(rig.vrf->verify(rig.invoke(args(2))).accepted);
  const auto v = rig.vrf->verify(rig.invoke(args(5)));
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::data_only_attack));
}

TEST(attack, stack_smash_classified_control_flow) {
  // A callee overflows its local buffer via memcpy (no access site, so the
  // bounds detector stays silent) and corrupts its return address; the
  // replay's return-address witness flags the control-flow attack.
  //
  // copy()'s frame: n@sp+0, local@sp+2..5, RA@sp+6; above it the op's
  // frame: n@+8, t2@+10, t3@+12, then the op's own RA. A 10-byte copy
  // plants rx[2] on copy's RA and rx[3]/rx[4] as the two gadget returns
  // that unwind back through the op's final ret (er_max).
  bench_rig rig(
      "int rx[8];"
      "int gadget() { return 13; }"
      "void copy(int n) { int local[2]; memcpy(local, rx, n); }"
      "int op(int n, int t2, int t3) {"
      "  rx[2] = 0; rx[3] = t2; rx[4] = t3; copy(n); return 1; }");
  // benign: n=4 copies only the local words.
  EXPECT_TRUE(rig.vrf->verify(rig.invoke(args(4, 0))).accepted);

  const std::uint16_t gadget = rig.prog.image.symbol("gadget");
  bench_rig rig2(
      "int rx[8];"
      "int gadget() { return 13; }"
      "void copy(int n) { int local[2]; memcpy(local, rx, n); }"
      "int op(int n, int t2, int t3) {"
      "  rx[2] = " + std::to_string(gadget) + ";"
      "  rx[3] = t2; rx[4] = t3; copy(n); return 1; }");
  proto::invocation inv;
  inv.args[0] = 10;                  // overflow: rx[0..4]
  inv.args[1] = rig2.prog.er_max;    // gadget's return -> op's final ret
  inv.args[2] = rig2.prog.er_max;    // second unwind -> pops the real RA
  const auto v = rig2.vrf->verify(rig2.invoke(inv));
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::control_flow_attack));
}

TEST(attack, uninitialized_stack_read_flagged) {
  bench_rig rig("int op(int a) { int x; return x + a; }");
  const auto v = rig.vrf->verify(rig.invoke(args(1)));
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::uninitialized_read));
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

namespace {
class forbid_port_writes final : public policy {
 public:
  std::string name() const override { return "forbid-p3out"; }
  void on_write(const replay_state&, std::uint16_t addr, std::uint16_t value,
                std::uint16_t pc, std::vector<finding>& out) override {
    if (addr == 0x0019 && value != 0) {
      out.push_back({attack_kind::policy_violation, "P3OUT driven", pc,
                     addr});
    }
  }
};
}  // namespace

TEST(policy, custom_policy_evaluated_over_replay) {
  bench_rig rig(
      "int op(int v) { __mmio_w8(25, v); __mmio_w8(25, 0); return v; }");
  rig.vrf->add_policy(std::make_shared<forbid_port_writes>());
  EXPECT_TRUE(rig.vrf->verify(rig.invoke(args(0))).accepted);
  const auto v = rig.vrf->verify(rig.invoke(args(1)));
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(attack_kind::policy_violation));
}

// ---------------------------------------------------------------------------
// Non-DIALED modes: MAC/EXEC-only verification
// ---------------------------------------------------------------------------

TEST(render, verdict_report_mentions_status_findings_and_provenance) {
  bench_rig rig(
      "int op(int v) { __mmio_w8(25, v); __mmio_w8(25, 0); return v; }");
  const auto good = rig.vrf->verify(rig.invoke(args(3)));
  const auto text = render(good);
  EXPECT_NE(text.find("ACCEPTED"), std::string::npos);
  EXPECT_NE(text.find("replayed result: 0x0003"), std::string::npos);
  EXPECT_NE(text.find("input-derived"), std::string::npos);

  auto rep = rig.invoke(args(3));
  rep.mac[0] ^= 1;
  const auto bad = render(rig.vrf->verify(rep));
  EXPECT_NE(bad.find("REJECTED"), std::string::npos);
  EXPECT_NE(bad.find("mac-invalid"), std::string::npos);
}

TEST(modes, tinycfa_only_reports_verify_without_replay) {
  bench_rig rig(adder, instr::instrumentation::tinycfa);
  const auto rep = rig.invoke(args(2, 3));
  const auto v = rig.vrf->verify(rep);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.replay_instructions, 0u);
}

TEST(modes, uninstrumented_op_verifies_mac_only) {
  bench_rig rig(adder, instr::instrumentation::none);
  const auto rep = rig.invoke(args(2, 3));
  EXPECT_TRUE(rig.vrf->verify(rep).accepted);
}

}  // namespace
}  // namespace dialed::verifier
