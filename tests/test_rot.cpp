// Root of trust: the APEX EXEC-flag FSM (every violation class), METADATA
// semantics, VRASED key isolation and the SW-Att model.
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "rot/attest.h"
#include "rot/rot.h"

namespace dialed::rot {
namespace {

/// Fixture: a machine with the RoT installed and a tiny two-instruction ER
///   er_min: mov #0x77, r15
///   er_max: ret
/// called from a crt that then halts.
class apex_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    map_ = emu::memory_map{};
    const std::string text =
        "        .org 0xc000\n"
        "__start:\n"
        "        mov #STACK_INIT, sp\n"
        "        call #0xe000\n"
        "        mov #1, &HALT_PORT\n"
        "        .org 0xe000\n"
        "er_entry:\n"
        "        mov #0x77, r15\n"
        "er_exit:\n"
        "        ret\n"
        "        .org RESET_VECTOR\n"
        "        .word __start\n";
    img_ = masm::assemble_text(text, map_.predefined_symbols());
    m_ = std::make_unique<emu::machine>(map_);
    rt_ = std::make_unique<root_of_trust>(*m_);
    rt_->vrased().provision_key(test::test_key());
    m_->load(img_);
    set_meta(0xe000, img_.symbol("er_exit"));
    m_->reset();
  }

  void set_meta(std::uint16_t er_min, std::uint16_t er_max) {
    auto w16 = [&](std::uint16_t off, std::uint16_t v) {
      rt_->apex().write8(static_cast<std::uint16_t>(map_.meta_base + off),
                         static_cast<std::uint8_t>(v & 0xff));
      rt_->apex().write8(
          static_cast<std::uint16_t>(map_.meta_base + off + 1),
          static_cast<std::uint8_t>(v >> 8));
    };
    w16(emu::META_ER_MIN, er_min);
    w16(emu::META_ER_MAX, er_max);
    w16(emu::META_OR_MIN, map_.or_min);
    w16(emu::META_OR_MAX, map_.or_max);
  }

  emu::memory_map map_;
  masm::image img_;
  std::unique_ptr<emu::machine> m_;
  std::unique_ptr<root_of_trust> rt_;
};

TEST_F(apex_fixture, clean_run_sets_exec) {
  m_->run(100'000);
  ASSERT_TRUE(m_->halted());
  EXPECT_TRUE(rt_->apex().exec_flag());
  EXPECT_EQ(rt_->apex().fsm(), apex_monitor::state::complete);
  EXPECT_TRUE(rt_->apex().violations().empty());
}

TEST_F(apex_fixture, exec_is_read_only_to_software) {
  m_->run(100'000);
  ASSERT_TRUE(rt_->apex().exec_flag());
  // A software write to the EXEC word is silently ignored.
  m_->get_bus().write16(
      static_cast<std::uint16_t>(map_.meta_base + emu::META_EXEC), 0);
  EXPECT_TRUE(rt_->apex().exec_flag());
  EXPECT_EQ(m_->get_bus().read16(static_cast<std::uint16_t>(
                map_.meta_base + emu::META_EXEC)),
            1);
}

TEST_F(apex_fixture, irq_during_execution_clears_exec) {
  // Run until the first ER instruction has executed (FSM in RUNNING).
  while (!m_->halted() && m_->get_cpu().pc() != 0xe000) {
    m_->get_cpu().step();
  }
  m_->get_cpu().step();  // executes at er_min -> state == running
  ASSERT_EQ(rt_->apex().fsm(), apex_monitor::state::running);
  // Adversarial software can set GIE; APEX watches the irq service itself.
  m_->get_cpu().regs()[isa::REG_SR] |= isa::SR_GIE;
  m_->get_cpu().request_interrupt(0);
  m_->get_cpu().step();  // services the interrupt inside ER
  EXPECT_FALSE(rt_->apex().exec_flag());
  ASSERT_FALSE(rt_->apex().violations().empty());
  EXPECT_EQ(rt_->apex().violations()[0].kind, apex_violation::irq_in_exec);
}

TEST_F(apex_fixture, dma_during_execution_clears_exec) {
  while (!m_->halted() && m_->get_cpu().pc() != 0xe000) {
    m_->get_cpu().step();
  }
  m_->get_cpu().step();  // state == running
  ASSERT_EQ(rt_->apex().fsm(), apex_monitor::state::running);
  m_->dma_write16(0x0300, 0xdead);  // any DMA during RUNNING violates
  m_->run(100'000);
  EXPECT_FALSE(rt_->apex().exec_flag());
  ASSERT_FALSE(rt_->apex().violations().empty());
  EXPECT_EQ(rt_->apex().violations()[0].kind, apex_violation::dma_in_exec);
}

TEST_F(apex_fixture, code_write_after_completion_clears_exec) {
  m_->run(100'000);
  ASSERT_TRUE(rt_->apex().exec_flag());
  m_->get_bus().write16(0xe000, 0x4303);  // patch ER
  EXPECT_FALSE(rt_->apex().exec_flag());
  EXPECT_EQ(rt_->apex().violations().back().kind,
            apex_violation::code_write);
}

TEST_F(apex_fixture, or_write_after_completion_clears_exec) {
  m_->run(100'000);
  ASSERT_TRUE(rt_->apex().exec_flag());
  m_->get_bus().write16(map_.or_max, 0xbeef);
  EXPECT_FALSE(rt_->apex().exec_flag());
  EXPECT_EQ(rt_->apex().violations().back().kind,
            apex_violation::or_write_outside);
}

TEST_F(apex_fixture, or_write_while_idle_is_silent_but_exec_stays_low) {
  m_->get_bus().write16(map_.or_min, 0x1234);  // e.g. crt0 zeroing
  EXPECT_FALSE(rt_->apex().exec_flag());
  EXPECT_TRUE(rt_->apex().violations().empty());
}

TEST_F(apex_fixture, meta_rewrite_after_completion_clears_exec) {
  m_->run(100'000);
  ASSERT_TRUE(rt_->apex().exec_flag());
  set_meta(0xe000, 0xe004);  // move the bounds
  EXPECT_FALSE(rt_->apex().exec_flag());
}

TEST_F(apex_fixture, challenge_bytes_stored_and_readable) {
  for (int i = 0; i < 16; ++i) {
    rt_->apex().write8(
        static_cast<std::uint16_t>(map_.meta_base + emu::META_CHAL + i),
        static_cast<std::uint8_t>(0xa0 + i));
  }
  const auto chal = rt_->apex().challenge();
  EXPECT_EQ(chal[0], 0xa0);
  EXPECT_EQ(chal[15], 0xaf);
  EXPECT_EQ(rt_->apex().read8(static_cast<std::uint16_t>(
                map_.meta_base + emu::META_CHAL + 3)),
            0xa3);
}

TEST(apex_escape, pc_leaving_er_before_er_max_clears_exec) {
  // ER whose first instruction branches OUT of ER before reaching er_max.
  emu::memory_map map;
  const std::string text =
      "        .org 0xc000\n"
      "__start:\n"
      "        mov #STACK_INIT, sp\n"
      "        call #0xe000\n"
      "back:   mov #1, &HALT_PORT\n"
      "        .org 0xe000\n"
      "        br #back\n"   // escapes immediately
      "        nop\n"
      "er_exit: ret\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n";
  auto img = masm::assemble_text(text, map.predefined_symbols());
  emu::machine m(map);
  root_of_trust rt(m);
  m.load(img);
  auto& apex = rt.apex();
  auto w16 = [&](std::uint16_t off, std::uint16_t v) {
    apex.write8(static_cast<std::uint16_t>(map.meta_base + off),
                static_cast<std::uint8_t>(v & 0xff));
    apex.write8(static_cast<std::uint16_t>(map.meta_base + off + 1),
                static_cast<std::uint8_t>(v >> 8));
  };
  w16(emu::META_ER_MIN, 0xe000);
  w16(emu::META_ER_MAX, img.symbol("er_exit"));
  m.reset();
  m.run(100'000);
  EXPECT_TRUE(m.halted());
  EXPECT_FALSE(apex.exec_flag());
  ASSERT_FALSE(apex.violations().empty());
  EXPECT_EQ(apex.violations()[0].kind, apex_violation::pc_escape);
}

TEST(apex_entry, mid_er_entry_never_sets_exec) {
  // Jumping into the middle of ER and running to er_max must not set EXEC.
  emu::memory_map map;
  const std::string text =
      "        .org 0xc000\n"
      "__start:\n"
      "        mov #STACK_INIT, sp\n"
      "        call #0xe004\n"  // skips er_min
      "        mov #1, &HALT_PORT\n"
      "        .org 0xe000\n"
      "        mov #0x11, r14\n"
      "        mov #0x22, r15\n"
      "er_exit: ret\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n";
  auto img = masm::assemble_text(text, map.predefined_symbols());
  emu::machine m(map);
  root_of_trust rt(m);
  m.load(img);
  auto w16 = [&](std::uint16_t off, std::uint16_t v) {
    rt.apex().write8(static_cast<std::uint16_t>(map.meta_base + off),
                     static_cast<std::uint8_t>(v & 0xff));
    rt.apex().write8(static_cast<std::uint16_t>(map.meta_base + off + 1),
                     static_cast<std::uint8_t>(v >> 8));
  };
  w16(emu::META_ER_MIN, 0xe000);
  w16(emu::META_ER_MAX, img.symbol("er_exit"));
  m.reset();
  m.run(100'000);
  EXPECT_TRUE(m.halted());
  EXPECT_FALSE(rt.apex().exec_flag());
}

// ---------------------------------------------------------------------------
// VRASED
// ---------------------------------------------------------------------------

class vrased_fixture : public apex_fixture {};

TEST_F(vrased_fixture, key_unreadable_outside_swatt) {
  const auto v = m_->get_bus().read8(map_.key_base);
  EXPECT_EQ(v, 0);  // gated to zero
  ASSERT_FALSE(rt_->vrased().violations().empty());
  EXPECT_EQ(rt_->vrased().violations()[0].kind,
            vrased_violation::key_read_outside_swatt);
}

TEST_F(vrased_fixture, key_write_protected) {
  m_->get_bus().write8(map_.key_base, 0xff);
  EXPECT_EQ(rt_->vrased().key()[0], 0x5a);  // unchanged
  EXPECT_EQ(rt_->vrased().violations().back().kind,
            vrased_violation::key_write);
}

TEST_F(vrased_fixture, key_provisioning_requires_exact_size) {
  EXPECT_THROW(rt_->vrased().provision_key(byte_vec(16, 1)), error);
}

TEST_F(vrased_fixture, srom_mid_entry_forces_fault) {
  // Jump into the middle of the secure ROM.
  m_->get_cpu().regs()[isa::REG_PC] =
      static_cast<std::uint16_t>(map_.srom_start + 4);
  m_->get_bus().poke16(static_cast<std::uint16_t>(map_.srom_start + 4),
                       0x4303);  // nop so decode succeeds
  m_->get_cpu().step();
  EXPECT_TRUE(m_->halted());
  EXPECT_EQ(m_->halt_code(), emu::HALT_FAULT);
  EXPECT_EQ(rt_->vrased().violations().back().kind,
            vrased_violation::srom_mid_entry);
}

TEST_F(vrased_fixture, swatt_mac_matches_host_computation) {
  // Run the op, then have the device attest; recompute on the host.
  for (int i = 0; i < 16; ++i) {
    rt_->apex().write8(
        static_cast<std::uint16_t>(map_.meta_base + emu::META_CHAL + i),
        static_cast<std::uint8_t>(i));
  }
  m_->run(100'000);
  ASSERT_TRUE(m_->halted());

  // Invoke SW-Att via its ROM entry.
  auto& regs = m_->get_cpu().regs();
  m_->clear_halt();
  regs[isa::REG_SP] = static_cast<std::uint16_t>(map_.stack_init - 8);
  m_->get_bus().poke16(regs[isa::REG_SP], 0xc004);  // fake return address
  regs[isa::REG_PC] = map_.srom_start;
  m_->run(m_->cycles() + 10'000'000);
  EXPECT_EQ(rt_->vrased().swatt_runs(), 1u);
  EXPECT_GT(rt_->vrased().last_swatt_cycles(), 0u);

  byte_vec er, orr;
  for (std::uint32_t a = 0xe000; a <= img_.symbol("er_exit") + 1u; ++a) {
    er.push_back(m_->get_bus().peek8(static_cast<std::uint16_t>(a)));
  }
  for (std::uint32_t a = map_.or_min; a <= map_.or_max + 1u; ++a) {
    orr.push_back(m_->get_bus().peek8(static_cast<std::uint16_t>(a)));
  }
  const auto chal = rt_->apex().challenge();
  attest_input in;
  in.er_min = 0xe000;
  in.er_max = img_.symbol("er_exit");
  in.or_min = map_.or_min;
  in.or_max = map_.or_max;
  in.exec = rt_->apex().exec_flag();
  in.challenge = chal;
  in.er_bytes = er;
  in.or_bytes = orr;
  const auto expected = compute_attestation_mac(test::test_key(), in);

  crypto::hmac_sha256::mac device_mac{};
  for (std::uint16_t i = 0; i < 32; ++i) {
    device_mac[i] =
        m_->get_bus().peek8(static_cast<std::uint16_t>(map_.mac_base + i));
  }
  EXPECT_TRUE(crypto::hmac_sha256::equal(device_mac, expected));
}

TEST(attest, mac_depends_on_every_field) {
  const auto key = test::test_key();
  byte_vec er = {1, 2, 3, 4};
  byte_vec orr = {5, 6};
  std::array<std::uint8_t, 16> chal{};
  attest_input base;
  base.er_min = 0xe000;
  base.er_max = 0xe002;
  base.or_min = 0x600;
  base.or_max = 0xdfe;
  base.exec = true;
  base.challenge = chal;
  base.er_bytes = er;
  base.or_bytes = orr;
  const auto m0 = compute_attestation_mac(key, base);

  auto in = base;
  in.exec = false;
  EXPECT_FALSE(crypto::hmac_sha256::equal(compute_attestation_mac(key, in), m0));

  in = base;
  in.er_min = 0xe002;
  EXPECT_FALSE(crypto::hmac_sha256::equal(compute_attestation_mac(key, in), m0));

  byte_vec er2 = {1, 2, 3, 5};
  in = base;
  in.er_bytes = er2;
  EXPECT_FALSE(crypto::hmac_sha256::equal(compute_attestation_mac(key, in), m0));

  std::array<std::uint8_t, 16> chal2{};
  chal2[0] = 1;
  in = base;
  in.challenge = chal2;
  EXPECT_FALSE(crypto::hmac_sha256::equal(compute_attestation_mac(key, in), m0));
}

TEST(swatt_cost, scales_with_attested_bytes) {
  swatt_cost_model c;
  EXPECT_GT(c.cycles_per_byte, 0u);
  const auto small = c.base_cycles + c.cycles_per_byte * 100;
  const auto large = c.base_cycles + c.cycles_per_byte * 1000;
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace dialed::rot
