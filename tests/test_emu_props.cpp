// Differential ALU testing: each arithmetic/logic instruction is executed
// on the emulated CPU over a grid of operand values (word and byte, both
// carry-in states) and compared — result and all four flags — against an
// independent reference model written straight from the MSP430 family
// user's guide semantics.
#include <gtest/gtest.h>

#include "helpers.h"

namespace dialed::emu {
namespace {

struct alu_out {
  std::uint16_t result = 0;
  bool c = false, z = false, n = false, v = false;
  bool writes_back = true;
  bool sets_flags = true;
};

/// Reference semantics (independent of src/emu/cpu.cpp).
alu_out reference(const std::string& op, std::uint32_t src, std::uint32_t dst,
                  bool byte, bool carry_in) {
  const std::uint32_t mask = byte ? 0xff : 0xffff;
  const std::uint32_t sign = byte ? 0x80 : 0x8000;
  src &= mask;
  dst &= mask;
  alu_out o;
  auto nz = [&](std::uint32_t r) {
    o.n = (r & sign) != 0;
    o.z = (r & mask) == 0;
  };
  if (op == "add" || op == "addc") {
    const std::uint32_t cin = (op == "addc" && carry_in) ? 1 : 0;
    const std::uint32_t full = dst + src + cin;
    o.result = static_cast<std::uint16_t>(full & mask);
    o.c = full > mask;
    o.v = ((dst ^ o.result) & (src ^ o.result) & sign) != 0;
    nz(o.result);
  } else if (op == "sub" || op == "subc" || op == "cmp") {
    const std::uint32_t cin = (op == "subc") ? (carry_in ? 1 : 0) : 1;
    const std::uint32_t full = dst + ((~src) & mask) + cin;
    o.result = static_cast<std::uint16_t>(full & mask);
    o.c = full > mask;
    o.v = ((dst ^ src) & (dst ^ o.result) & sign) != 0;
    nz(o.result);
    o.writes_back = op != "cmp";
  } else if (op == "and" || op == "bit") {
    o.result = static_cast<std::uint16_t>(dst & src);
    nz(o.result);
    o.c = !o.z;
    o.v = false;
    o.writes_back = op != "bit";
  } else if (op == "xor") {
    o.result = static_cast<std::uint16_t>((dst ^ src) & mask);
    nz(o.result);
    o.c = !o.z;
    o.v = (dst & sign) != 0 && (src & sign) != 0;
  } else if (op == "bis") {
    o.result = static_cast<std::uint16_t>(dst | src);
    o.sets_flags = false;
  } else if (op == "bic") {
    o.result = static_cast<std::uint16_t>(dst & ~src & mask);
    o.sets_flags = false;
  } else if (op == "dadd") {
    std::uint32_t carry = carry_in ? 1 : 0;
    std::uint32_t out = 0;
    const int nibbles = byte ? 2 : 4;
    for (int i = 0; i < nibbles; ++i) {
      std::uint32_t t =
          ((dst >> (4 * i)) & 0xf) + ((src >> (4 * i)) & 0xf) + carry;
      carry = t > 9 ? 1 : 0;
      if (t > 9) t += 6;
      out |= (t & 0xf) << (4 * i);
    }
    o.result = static_cast<std::uint16_t>(out & mask);
    o.c = carry != 0;
    nz(o.result);
    o.v = false;  // undefined in hardware; the emulator leaves it clear
  }
  return o;
}

struct grid_case {
  std::string op;
  bool byte;
  bool carry_in;
};

class alu_grid : public ::testing::TestWithParam<grid_case> {};

TEST_P(alu_grid, matches_reference_over_value_grid) {
  const auto& c = GetParam();
  static const std::uint16_t values[] = {0x0000, 0x0001, 0x0002, 0x007f,
                                         0x0080, 0x00ff, 0x0100, 0x7fff,
                                         0x8000, 0xffff, 0x1234, 0xabcd};
  const std::string mnem = c.op + (c.byte ? ".b" : "");
  for (const std::uint16_t src : values) {
    for (const std::uint16_t dst : values) {
      const std::string body =
          "        mov #" + std::to_string(dst) + ", r10\n" +
          "        mov #" + std::to_string(src) + ", r11\n" +
          (c.carry_in ? "        setc\n" : "        clrc\n") +
          "        " + mnem + " r11, r10\n" +
          "        mov sr, r12\n" +
          "        mov #1, &HALT_PORT\n";
      auto m = test::run_asm(body);
      ASSERT_TRUE(m->halted());
      const auto ref = reference(c.op, src, dst, c.byte, c.carry_in);
      const auto& regs = m->get_cpu().regs();
      const std::uint16_t sr = regs[12];
      const std::string ctx = mnem + " #" + std::to_string(src) + ", #" +
                              std::to_string(dst) +
                              (c.carry_in ? " (C=1)" : " (C=0)");
      if (ref.writes_back) {
        const std::uint16_t expect =
            c.byte ? static_cast<std::uint16_t>(ref.result & 0xff)
                   : ref.result;
        ASSERT_EQ(regs[10], expect) << ctx;
      } else {
        // cmp/bit never write back: the register keeps its full value,
        // even in byte mode.
        ASSERT_EQ(regs[10], dst) << ctx;
      }
      if (ref.sets_flags) {
        ASSERT_EQ((sr & isa::SR_C) != 0, ref.c) << ctx << " carry";
        ASSERT_EQ((sr & isa::SR_Z) != 0, ref.z) << ctx << " zero";
        ASSERT_EQ((sr & isa::SR_N) != 0, ref.n) << ctx << " negative";
        ASSERT_EQ((sr & isa::SR_V) != 0, ref.v) << ctx << " overflow";
      } else {
        // bic/bis leave flags untouched: C must still be the carry-in.
        ASSERT_EQ((sr & isa::SR_C) != 0, c.carry_in) << ctx;
      }
    }
  }
}

std::vector<grid_case> grid_cases() {
  std::vector<grid_case> out;
  for (const char* op : {"add", "addc", "sub", "subc", "cmp", "and", "bit",
                         "xor", "bis", "bic", "dadd"}) {
    for (const bool byte : {false, true}) {
      for (const bool cin : {false, true}) {
        out.push_back({op, byte, cin});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    ops, alu_grid, ::testing::ValuesIn(grid_cases()),
    [](const auto& info) {
      return info.param.op + (info.param.byte ? "_b" : "_w") +
             (info.param.carry_in ? "_c1" : "_c0");
    });

// Single-operand shifts/rotates against reference semantics.
class shift_grid : public ::testing::TestWithParam<bool> {};

TEST_P(shift_grid, rra_rrc_match_reference) {
  const bool byte = GetParam();
  static const std::uint16_t values[] = {0x0000, 0x0001, 0x0081, 0x00fe,
                                         0x8000, 0x8001, 0x7ffe, 0xffff};
  const std::uint32_t mask = byte ? 0xff : 0xffff;
  const std::uint32_t sign = byte ? 0x80 : 0x8000;
  for (const std::uint16_t v0 : values) {
    for (const bool cin : {false, true}) {
      const std::uint32_t v = v0 & mask;
      // RRA: arithmetic right shift, C = old bit0.
      {
        const std::string body =
            "        mov #" + std::to_string(v0) + ", r10\n" +
            (cin ? "        setc\n" : "        clrc\n") +
            std::string("        rra") + (byte ? ".b" : "") + " r10\n" +
            "        mov sr, r12\n        mov #1, &HALT_PORT\n";
        auto m = test::run_asm(body);
        const std::uint16_t expect =
            static_cast<std::uint16_t>(((v >> 1) | (v & sign)) & mask);
        ASSERT_EQ(m->get_cpu().regs()[10], expect) << "rra " << v0;
        ASSERT_EQ((m->get_cpu().regs()[12] & isa::SR_C) != 0, (v & 1) != 0);
      }
      // RRC: rotate right through carry.
      {
        const std::string body =
            "        mov #" + std::to_string(v0) + ", r10\n" +
            (cin ? "        setc\n" : "        clrc\n") +
            std::string("        rrc") + (byte ? ".b" : "") + " r10\n" +
            "        mov sr, r12\n        mov #1, &HALT_PORT\n";
        auto m = test::run_asm(body);
        const std::uint16_t expect = static_cast<std::uint16_t>(
            ((v >> 1) | (cin ? sign : 0)) & mask);
        ASSERT_EQ(m->get_cpu().regs()[10], expect)
            << "rrc " << v0 << " cin=" << cin;
        ASSERT_EQ((m->get_cpu().regs()[12] & isa::SR_C) != 0, (v & 1) != 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(widths, shift_grid, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("byte")
                                             : std::string("word");
                         });

}  // namespace
}  // namespace dialed::emu
