// The observability core: log2 latency buckets and histogram snapshot
// self-consistency, span-recorder stage attribution (incl. the
// zero-duration-marked-stage guarantee and the verdict exclusion), the
// flight recorder's adaptive slow bar + bounded rings, and the
// structured event log (logfmt/JSON shapes, level gating, per-callsite
// rate limiting). Pure in-process — the socket-facing rendering of the
// same data is covered in test_net.cpp.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/obs.h"

namespace dialed::obs {
namespace {

// ---------------------------------------------------------------------------
// Latency buckets
// ---------------------------------------------------------------------------

TEST(obs_histogram, bucket_boundaries) {
  // Bucket 0 covers everything through 1.024us, including 0.
  EXPECT_EQ(latency_bucket(0), 0u);
  EXPECT_EQ(latency_bucket(1), 0u);
  EXPECT_EQ(latency_bucket(1024), 0u);
  // Exact upper bounds land in their own bucket; one past moves up.
  for (std::size_t i = 0; i + 1 < latency_buckets; ++i) {
    EXPECT_EQ(latency_bucket(latency_bucket_bound_ns(i)), i) << i;
    EXPECT_EQ(latency_bucket(latency_bucket_bound_ns(i) + 1), i + 1) << i;
  }
  // Everything past the last bound clamps into the +Inf bucket.
  EXPECT_EQ(latency_bucket(~std::uint64_t{0}), latency_buckets - 1);
}

TEST(obs_histogram, record_snapshot_merge) {
  latency_histogram h;
  h.record(100);        // bucket 0
  h.record(5000);       // bucket 3 (4.096us..8.192us)
  h.record(5000);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum_ns, 10100u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[latency_bucket(5000)], 2u);
  // count is derived from the buckets: always self-consistent.
  std::uint64_t total = 0;
  for (const auto b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);

  histogram_snapshot m = s;
  m.merge(s);
  EXPECT_EQ(m.count, 6u);
  EXPECT_EQ(m.sum_ns, 20200u);
}

// ---------------------------------------------------------------------------
// Span recorder
// ---------------------------------------------------------------------------

TEST(obs_span, disabled_recorder_is_inert) {
  span_recorder sp(false);
  sp.mark(stage::decode);
  sp.credit(stage::mac, 1000);
  sp.mark_excluding(stage::verdict, 10);
  EXPECT_EQ(sp.total_ns(), 0u);
  EXPECT_EQ(sp.marked(), 0u);
  for (const auto ns : sp.stage_ns()) EXPECT_EQ(ns, 0u);
}

TEST(obs_span, marks_credit_and_exclusion) {
  span_recorder sp(true);
  sp.mark(stage::decode);
  sp.mark(stage::journal);
  sp.credit(stage::mac, 700);
  sp.credit(stage::replay, 300);
  sp.mark_excluding(stage::verdict, 1000);

  const auto& ns = sp.stage_ns();
  EXPECT_EQ(ns[static_cast<std::size_t>(stage::mac)], 700u);
  EXPECT_EQ(ns[static_cast<std::size_t>(stage::replay)], 300u);
  // Every stage marked — including any that took 0ns at clock
  // granularity (the histogram must still count them).
  EXPECT_EQ(sp.marked(), 0b11111u);
  // total covers start..last-mark; at least the attributed wall time.
  std::uint64_t attributed = 0;
  for (std::size_t i = 0; i < stage_count; ++i) {
    if (static_cast<stage>(i) == stage::mac ||
        static_cast<stage>(i) == stage::replay) {
      continue;  // credited externally, not wall time between marks
    }
    attributed += ns[i];
  }
  EXPECT_GE(sp.total_ns(), attributed);
}

TEST(obs_span, exclusion_never_underflows) {
  span_recorder sp(true);
  // Excluding far more than elapsed clamps the stage to 0 — and the
  // stage still registers as marked.
  sp.mark_excluding(stage::verdict, ~std::uint64_t{0});
  EXPECT_EQ(sp.stage_ns()[static_cast<std::size_t>(stage::verdict)], 0u);
  EXPECT_NE(sp.marked() &
                (1u << static_cast<std::size_t>(stage::verdict)),
            0u);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

span_trace make_trace(std::uint64_t id, std::uint64_t total,
                      bool accepted) {
  span_trace t;
  t.trace_id = id;
  t.start_ns = id;  // monotone stand-in
  t.total_ns = total;
  t.accepted = accepted;
  return t;
}

TEST(obs_recorder, rejected_always_recorded_slow_bar_adapts) {
  recorder_config cfg;
  cfg.slow_capacity = 4;
  cfg.rejected_capacity = 4;
  flight_recorder fr(cfg);

  // First accepted trace sets the bar (slowest=1000, bar=500).
  fr.record(make_trace(1, 1000, true));
  // Under the bar: not recorded as slow.
  fr.record(make_trace(2, 400, true));
  // At/above the bar: recorded.
  fr.record(make_trace(3, 600, true));
  // Rejected traces are always recorded, however fast.
  fr.record(make_trace(4, 1, false));

  const auto d = fr.snapshot();
  EXPECT_EQ(d.slowest_ns, 1000u);
  ASSERT_EQ(d.slow.size(), 2u);
  EXPECT_EQ(d.slow[0].trace_id, 1u);
  EXPECT_EQ(d.slow[1].trace_id, 3u);
  ASSERT_EQ(d.rejected.size(), 1u);
  EXPECT_EQ(d.rejected[0].trace_id, 4u);
  EXPECT_EQ(d.slow_recorded, 2u);
  EXPECT_EQ(d.rejected_recorded, 1u);
}

TEST(obs_recorder, slow_floor_suppresses_warmup) {
  recorder_config cfg;
  cfg.slow_floor_ns = 10000;
  flight_recorder fr(cfg);
  fr.record(make_trace(1, 500, true));  // slowest=500, but under floor
  EXPECT_EQ(fr.snapshot().slow.size(), 0u);
  fr.record(make_trace(2, 20000, true));
  EXPECT_EQ(fr.snapshot().slow.size(), 1u);
}

TEST(obs_recorder, ring_wraps_oldest_first) {
  recorder_config cfg;
  cfg.rejected_capacity = 3;
  flight_recorder fr(cfg);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    fr.record(make_trace(i, 10, false));
  }
  const auto d = fr.snapshot();
  ASSERT_EQ(d.rejected.size(), 3u);
  EXPECT_EQ(d.rejected[0].trace_id, 3u);  // oldest surviving first
  EXPECT_EQ(d.rejected[1].trace_id, 4u);
  EXPECT_EQ(d.rejected[2].trace_id, 5u);
  EXPECT_EQ(d.rejected_recorded, 5u);  // lifetime admissions keep counting
}

TEST(obs_pipeline, record_bumps_marked_stages_only) {
  pipeline_obs po;
  span_recorder sp(true);
  sp.mark(stage::decode);
  sp.credit(stage::mac, 50);
  po.record(sp, /*device=*/7, /*seq=*/3, /*error=*/0, /*accepted=*/true);

  const auto s = po.snapshot();
  EXPECT_EQ(s.stages[static_cast<std::size_t>(stage::decode)].count, 1u);
  EXPECT_EQ(s.stages[static_cast<std::size_t>(stage::mac)].count, 1u);
  EXPECT_EQ(s.stages[static_cast<std::size_t>(stage::journal)].count, 0u);
  EXPECT_EQ(s.stages[static_cast<std::size_t>(stage::replay)].count, 0u);
}

TEST(obs_pipeline, concurrent_record_and_snapshot) {
  pipeline_obs po;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto s = po.snapshot();
      std::uint64_t count =
          s.stages[static_cast<std::size_t>(stage::decode)].count;
      EXPECT_GE(count, last);  // monotone across snapshots
      last = count;
      (void)po.traces();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    span_recorder sp(true);
    sp.mark(stage::decode);
    sp.mark(stage::journal);
    po.record(sp, 1, static_cast<std::uint32_t>(i), 0, (i % 7) != 0);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const auto s = po.snapshot();
  EXPECT_EQ(s.stages[static_cast<std::size_t>(stage::decode)].count,
            2000u);
}

// ---------------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------------

struct capture {
  std::vector<std::string> lines;
  static void sink(void* ctx, std::string_view line) {
    static_cast<capture*>(ctx)->lines.emplace_back(line);
  }
};

/// Scoped logger reconfiguration: tests share the process-wide logger,
/// so always restore the quiet default.
struct scoped_logger {
  explicit scoped_logger(log_level l, bool json, capture& c) {
    log().configure(l, json);
    log().set_sink(&capture::sink, &c);
  }
  ~scoped_logger() {
    log().configure(log_level::off, false);
    log().set_sink(nullptr, nullptr);
  }
};

TEST(obs_events, logfmt_shape_and_quoting) {
  capture c;
  scoped_logger guard(log_level::debug, /*json=*/false, c);
  log().emit(log_level::info, "device_flagged",
             {{"device", std::uint64_t{42}},
              {"note", "needs quoting here"},
              {"delta", -3},
              {"ok", true}});
  ASSERT_EQ(c.lines.size(), 1u);
  const auto& line = c.lines[0];
  EXPECT_NE(line.find("level=info"), std::string::npos);
  EXPECT_NE(line.find("event=device_flagged"), std::string::npos);
  EXPECT_NE(line.find("device=42"), std::string::npos);
  EXPECT_NE(line.find("note=\"needs quoting here\""), std::string::npos);
  EXPECT_NE(line.find("delta=-3"), std::string::npos);
  EXPECT_NE(line.find("ok=true"), std::string::npos);
  EXPECT_EQ(line.find("ts="), 0u);  // timestamp leads the line
}

TEST(obs_events, json_shape) {
  capture c;
  scoped_logger guard(log_level::debug, /*json=*/true, c);
  log().emit(log_level::warn, "standby_desync",
             {{"dir", "/tmp/x \"y\""}, {"lag", std::uint64_t{9}}});
  ASSERT_EQ(c.lines.size(), 1u);
  const auto& line = c.lines[0];
  EXPECT_EQ(line.front(), '{');
  ASSERT_GE(line.size(), 2u);
  EXPECT_EQ(line.substr(line.size() - 2), "}\n");
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"standby_desync\""),
            std::string::npos);
  EXPECT_NE(line.find("\"dir\":\"/tmp/x \\\"y\\\"\""),
            std::string::npos);
  EXPECT_NE(line.find("\"lag\":9"), std::string::npos);
}

TEST(obs_events, level_gating) {
  capture c;
  scoped_logger guard(log_level::warn, /*json=*/false, c);
  EXPECT_FALSE(log().should(log_level::debug));
  EXPECT_TRUE(log().should(log_level::error));
  log().emit(log_level::info, "dropped", {});
  log().emit(log_level::error, "kept", {});
  ASSERT_EQ(c.lines.size(), 1u);
  EXPECT_NE(c.lines[0].find("event=kept"), std::string::npos);
}

TEST(obs_events, off_means_off) {
  capture c;
  scoped_logger guard(log_level::off, /*json=*/false, c);
  EXPECT_FALSE(log().should(log_level::error));
  log().emit(log_level::error, "nope", {});
  EXPECT_TRUE(c.lines.empty());
}

TEST(obs_events, rate_limit_suppresses_and_reports) {
  capture c;
  scoped_logger guard(log_level::debug, /*json=*/false, c);
  rate_limit rl(/*max_per_window=*/2, /*window_ns=*/60'000'000'000ull);
  for (int i = 0; i < 10; ++i) {
    log().emit(log_level::info, "flood", rl, {{"i", i}});
  }
  // Only the budgeted two lines emerge; the rest are counted.
  EXPECT_EQ(c.lines.size(), 2u);
  EXPECT_EQ(rl.suppressed.load(), 8u);
}

TEST(obs_events, parse_levels) {
  log_level l;
  EXPECT_TRUE(parse_log_level("info", l));
  EXPECT_EQ(l, log_level::info);
  EXPECT_TRUE(parse_log_level("off", l));
  EXPECT_EQ(l, log_level::off);
  EXPECT_FALSE(parse_log_level("verbose", l));
  EXPECT_STREQ(to_string(log_level::warn), "warn");
}

TEST(obs_stage_names, round_trip) {
  EXPECT_STREQ(to_string(stage::decode), "decode");
  EXPECT_STREQ(to_string(stage::journal), "journal");
  EXPECT_STREQ(to_string(stage::mac), "mac");
  EXPECT_STREQ(to_string(stage::replay), "replay");
  EXPECT_STREQ(to_string(stage::verdict), "verdict");
}

}  // namespace
}  // namespace dialed::obs
