// Assembler: parsing, emulated-mnemonic canonicalization, two-pass layout,
// symbols/expressions, directives, and the disassembler round-trip.
#include <gtest/gtest.h>

#include "common/error.h"
#include "masm/disasm.h"
#include "masm/masm.h"

namespace dialed::masm {
namespace {

image asm_at(const std::string& body,
             const std::map<std::string, std::uint16_t>& pre = {}) {
  return assemble_text("        .org 0xc000\n" + body, pre);
}

const segment& only_segment(const image& img) {
  EXPECT_EQ(img.segments.size(), 1u);
  return img.segments.front();
}

// ---------------------------------------------------------------------------
// Parsing + encoding basics
// ---------------------------------------------------------------------------

TEST(parse, simple_mov_immediate) {
  const auto img = asm_at("        mov #0x1234, r15\n");
  const auto& seg = only_segment(img);
  ASSERT_EQ(seg.bytes.size(), 4u);
  EXPECT_EQ(load_le16(seg.bytes, 0), 0x403f);  // mov #N, r15
  EXPECT_EQ(load_le16(seg.bytes, 2), 0x1234);
}

TEST(parse, addressing_mode_zoo) {
  const auto img = asm_at(
      "        mov r4, r5\n"
      "        mov @r6, 4(r7)\n"
      "        mov @r8+, &0x0200\n"
      "        mov.b 2(r9), r10\n"
      "        cmp #-1, r11\n");
  EXPECT_GT(only_segment(img).bytes.size(), 0u);
}

TEST(parse, labels_resolve_forward_and_backward) {
  const auto img = asm_at(
      "start:  mov #1, r15\n"
      "        jmp end\n"
      "mid:    mov #2, r15\n"
      "end:    jmp start\n");
  EXPECT_EQ(img.symbol("start"), 0xc000);
  EXPECT_EQ(img.symbol("mid"), 0xc004);
  EXPECT_EQ(img.symbol("end"), 0xc006);
}

TEST(parse, comments_and_blank_lines_ignored) {
  const auto img = asm_at(
      "\n"
      "        ; full-line comment\n"
      "        mov #1, r15   ; trailing comment\n"
      "\n");
  EXPECT_EQ(only_segment(img).bytes.size(), 2u);  // CG immediate
}

TEST(parse, reports_unknown_mnemonic_with_line) {
  try {
    asm_at("        frobnicate r1\n");
    FAIL() << "expected error";
  } catch (const error& e) {
    EXPECT_NE(std::string(e.what()).find("masm:2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(parse, rejects_wrong_operand_count) {
  EXPECT_THROW(asm_at("        mov r1\n"), error);
  EXPECT_THROW(asm_at("        ret r1\n"), error);
  EXPECT_THROW(asm_at("        push\n"), error);
}

// ---------------------------------------------------------------------------
// Emulated mnemonics canonicalize to core encodings
// ---------------------------------------------------------------------------

struct emu_case {
  std::string emulated;
  std::string core;
};

class emulated_mnemonics : public ::testing::TestWithParam<emu_case> {};

TEST_P(emulated_mnemonics, same_encoding_as_core_form) {
  const auto& c = GetParam();
  const auto a = asm_at("        " + c.emulated + "\n");
  const auto b = asm_at("        " + c.core + "\n");
  EXPECT_EQ(only_segment(a).bytes, only_segment(b).bytes)
      << c.emulated << " vs " << c.core;
}

INSTANTIATE_TEST_SUITE_P(
    table, emulated_mnemonics,
    ::testing::Values(emu_case{"ret", "mov @sp+, pc"},
                      emu_case{"pop r7", "mov @sp+, r7"},
                      emu_case{"br #0xc000", "mov #0xc000, pc"},
                      emu_case{"clr r5", "mov #0, r5"},
                      emu_case{"inc r5", "add #1, r5"},
                      emu_case{"incd r5", "add #2, r5"},
                      emu_case{"dec r5", "sub #1, r5"},
                      emu_case{"decd r5", "sub #2, r5"},
                      emu_case{"tst r5", "cmp #0, r5"},
                      emu_case{"inv r5", "xor #-1, r5"},
                      emu_case{"rla r5", "add r5, r5"},
                      emu_case{"rlc r5", "addc r5, r5"},
                      emu_case{"adc r5", "addc #0, r5"},
                      emu_case{"sbc r5", "subc #0, r5"},
                      emu_case{"dint", "bic #8, sr"},
                      emu_case{"eint", "bis #8, sr"},
                      emu_case{"setc", "bis #1, sr"},
                      emu_case{"clrc", "bic #1, sr"},
                      emu_case{"nop", "mov r3, r3"},
                      emu_case{"jz 0xc002", "jeq 0xc002"},
                      emu_case{"jlo 0xc002", "jnc 0xc002"}));

// ---------------------------------------------------------------------------
// Directives, symbols, segments
// ---------------------------------------------------------------------------

TEST(directives, word_byte_space_align) {
  const auto img = asm_at(
      "data:   .word 0x1234, label\n"
      "        .byte 1, 2, 3\n"
      "        .align\n"
      "        .space 4\n"
      "label:  mov #1, r15\n");
  const auto& seg = only_segment(img);
  EXPECT_EQ(load_le16(seg.bytes, 0), 0x1234);
  EXPECT_EQ(load_le16(seg.bytes, 2), img.symbol("label"));
  EXPECT_EQ(seg.bytes[4], 1);
  EXPECT_EQ(seg.bytes[7], 0);  // align pad (after the three .byte values)
  EXPECT_EQ(img.symbol("label"), 0xc000 + 2 + 2 + 3 + 1 + 4);
}

TEST(directives, equ_defines_symbols) {
  const auto img = asm_at(
      "        .equ MAGIC, 0x55aa\n"
      "        mov #MAGIC, r15\n");
  const auto& seg = only_segment(img);
  EXPECT_EQ(load_le16(seg.bytes, 2), 0x55aa);
}

TEST(directives, org_opens_new_segments) {
  const auto img = assemble_text(
      "        .org 0xc000\n"
      "        mov #3, r15\n"
      "        .org 0xfffe\n"
      "        .word 0xc000\n");
  ASSERT_EQ(img.segments.size(), 2u);
  EXPECT_EQ(img.segments[0].base, 0xc000);
  EXPECT_EQ(img.segments[1].base, 0xfffe);
}

TEST(symbols, predefined_are_visible) {
  const auto img = asm_at("        mov #EXTERNAL, r15\n",
                          {{"EXTERNAL", 0x0beb}});
  EXPECT_EQ(load_le16(only_segment(img).bytes, 2), 0x0beb);
}

TEST(symbols, undefined_symbol_is_an_error) {
  EXPECT_THROW(asm_at("        mov #missing, r15\n"), error);
}

TEST(symbols, duplicate_label_is_an_error) {
  EXPECT_THROW(asm_at("a:      nop\na:      nop\n"), error);
}

TEST(symbols, expression_with_offset) {
  const auto img = asm_at(
      "base:   .word 0\n"
      "        mov #base+6, r15\n"
      "        mov &base+2, r14\n");
  const auto& seg = only_segment(img);
  EXPECT_EQ(load_le16(seg.bytes, 4), 0xc006);
}

TEST(segments, overlap_is_an_error) {
  EXPECT_THROW(assemble_text("        .org 0xc000\n"
                             "        .space 16\n"
                             "        .org 0xc004\n"
                             "        .word 1\n"),
               error);
}

TEST(layout, symbolic_immediates_never_use_constant_generator) {
  // `#ONE` must keep its extension word even though ONE == 1, so pass-1
  // sizes are stable.
  const auto img = asm_at(
      "        .equ ONE, 1\n"
      "        mov #ONE, r15\n");
  EXPECT_EQ(only_segment(img).bytes.size(), 4u);
}

TEST(layout, instruction_at_odd_address_is_an_error) {
  EXPECT_THROW(asm_at("        .byte 1\n        mov #1, r15\n"), error);
}

TEST(listing, records_addresses_and_text) {
  const auto img = asm_at(
      "        mov #0x1234, r15\n"
      "        ret\n");
  ASSERT_EQ(img.listing.size(), 2u);
  EXPECT_EQ(img.listing[0].address, 0xc000);
  EXPECT_EQ(img.listing[0].size_bytes, 4);
  EXPECT_EQ(img.listing[1].address, 0xc004);
  EXPECT_NE(img.listing[1].text.find("mov"), std::string::npos);
}

// ---------------------------------------------------------------------------
// to_text round-trip and disassembler
// ---------------------------------------------------------------------------

TEST(roundtrip, to_text_reparses_to_same_image) {
  const std::string src =
      "        .org 0xc000\n"
      "entry:  mov #0x1234, r15\n"
      "        add @r14+, r15\n"
      "        cmp #0, r15\n"
      "        jeq entry\n"
      "        push r11\n"
      "        call #entry\n"
      "        ret\n";
  const auto img1 = assemble_text(src);
  const auto text = to_text(parse(src));
  // Labels survive; .org directives survive; encodings must match.
  const auto img2 = assemble_text(text);
  ASSERT_EQ(img1.segments.size(), img2.segments.size());
  EXPECT_EQ(img1.segments[0].bytes, img2.segments[0].bytes);
}

TEST(disasm, linear_decode_of_assembled_code) {
  const auto img = asm_at(
      "        mov #0x1234, r15\n"
      "        add r14, r15\n"
      "        ret\n");
  const auto entries = disassemble(img);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].address, 0xc000);
  EXPECT_EQ(entries[0].size_bytes, 4);
  EXPECT_NE(entries[0].text.find("mov"), std::string::npos);
  EXPECT_EQ(entries[2].text, "mov @sp+, pc");  // ret canonical form
}

TEST(disasm, roundtrip_property_over_program) {
  // Disassembling and re-rendering every instruction must preserve sizes.
  const auto img = asm_at(
      "loop:   mov.b @r15+, 3(r14)\n"
      "        xor #0x00ff, r13\n"
      "        bit #1, r13\n"
      "        jne loop\n"
      "        swpb r12\n"
      "        sxt r12\n"
      "        rra r12\n"
      "        rrc r12\n"
      "        reti\n");
  const auto entries = disassemble(img);
  std::size_t total = 0;
  for (const auto& e : entries) total += static_cast<std::size_t>(e.size_bytes);
  EXPECT_EQ(total, only_segment(img).bytes.size());
}

}  // namespace
}  // namespace dialed::masm
