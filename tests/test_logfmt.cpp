// OR log layout model.
#include <gtest/gtest.h>

#include "common/error.h"
#include "logfmt/logfmt.h"

namespace dialed::logfmt {
namespace {

byte_vec make_or(std::uint16_t or_min, std::uint16_t or_max) {
  return byte_vec(static_cast<std::size_t>(or_max) + 2 - or_min, 0);
}

void set_slot(byte_vec& bytes, std::uint16_t or_min, std::uint16_t or_max,
              int slot, std::uint16_t value) {
  const std::size_t off =
      static_cast<std::size_t>(or_max - 2 * slot - or_min);
  store_le16(bytes, off, value);
}

TEST(log_view, slots_count_down_from_or_max) {
  const std::uint16_t lo = 0x600, hi = 0xdfe;
  auto bytes = make_or(lo, hi);
  set_slot(bytes, lo, hi, 0, 0x1100);
  set_slot(bytes, lo, hi, 1, 0x2200);
  set_slot(bytes, lo, hi, 5, 0x5500);
  log_view v(lo, hi, bytes);
  EXPECT_EQ(v.slot(0), 0x1100);
  EXPECT_EQ(v.slot(1), 0x2200);
  EXPECT_EQ(v.slot(5), 0x5500);
  EXPECT_EQ(v.saved_sp(), 0x1100);
}

TEST(log_view, entry_registers_and_arguments) {
  const std::uint16_t lo = 0x600, hi = 0xdfe;
  auto bytes = make_or(lo, hi);
  set_slot(bytes, lo, hi, 0, 0x11f6);            // saved sp
  for (int i = 0; i < 8; ++i) {                  // r8..r15
    set_slot(bytes, lo, hi, 1 + i, static_cast<std::uint16_t>(0x800 + i));
  }
  log_view v(lo, hi, bytes);
  EXPECT_EQ(v.entry_reg(0), 0x800);  // r8
  EXPECT_EQ(v.entry_reg(7), 0x807);  // r15
  // C argument 0 travels in r15, argument 1 in r14...
  EXPECT_EQ(v.argument(0), 0x807);
  EXPECT_EQ(v.argument(1), 0x806);
  EXPECT_EQ(v.argument(7), 0x800);
}

TEST(log_view, used_slots_and_bytes) {
  const std::uint16_t lo = 0x600, hi = 0xdfe;
  log_view v(lo, hi, make_or(lo, hi));
  EXPECT_EQ(v.used_slots(hi), 0);
  EXPECT_EQ(v.used_slots(static_cast<std::uint16_t>(hi - 2)), 1);
  EXPECT_EQ(v.used_bytes(static_cast<std::uint16_t>(hi - 18)), 18);
  EXPECT_EQ(v.capacity(), (hi + 2 - lo) / 2);
}

TEST(log_view, rejects_wrong_snapshot_size) {
  byte_vec bytes(10, 0);
  EXPECT_THROW(log_view(0x600, 0xdfe, bytes), error);
}

TEST(log_view, slot_bounds_checked) {
  const std::uint16_t lo = 0x600, hi = 0x60e;  // 8 slots
  log_view v(lo, hi, make_or(lo, hi));
  EXPECT_NO_THROW(v.slot(7));
  EXPECT_THROW(v.slot(8), error);
  EXPECT_THROW(v.slot(-1), error);
}

TEST(log_view, word_at_bounds_checked) {
  const std::uint16_t lo = 0x600, hi = 0x60e;
  log_view v(lo, hi, make_or(lo, hi));
  EXPECT_NO_THROW(v.word_at(0x600));
  EXPECT_NO_THROW(v.word_at(0x60e));
  EXPECT_THROW(v.word_at(0x5fe), error);
  EXPECT_THROW(v.word_at(0x610), error);
}

TEST(entry_kind, printable) {
  EXPECT_EQ(to_string(entry_kind::saved_sp), "saved-sp");
  EXPECT_EQ(to_string(entry_kind::entry_arg), "entry-arg");
  EXPECT_EQ(to_string(entry_kind::cf_destination), "cf-dest");
  EXPECT_EQ(to_string(entry_kind::data_input), "data-input");
}

}  // namespace
}  // namespace dialed::logfmt
