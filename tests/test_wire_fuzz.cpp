// The adversarial wire/store fuzz-and-differential battery (wire v2.1).
//
// A deterministic, structure-aware mutational fuzzer — seeded mt19937_64
// streams, no wall-clock anywhere, so every failure replays bit-exactly —
// hammering the attacker-reachable parsers:
//
//   * proto::decode_frame / decode_frame_into  (v1, v2, v2.1 frames)
//   * proto::apply_or_delta                    (delta reconstruction)
//   * store::read_wal + fleet_store::open      (WAL / snapshot parsing)
//
// with truncations, length-field lies, CRC flips, version skews and
// baseline desyncs. The properties, from the issue:
//
//   1. decode never crashes (run this suite under ASan/UBSan — the CI
//      `fuzz` job does) and maps every malformed input to a TYPED error;
//   2. the verifier hub never accepts a frame whose reconstructed OR
//      differs from the ground-truth OR the device attested;
//   3. corrupt store bytes either load exactly or throw a typed
//      store_error — never a crash, never a partial load.
//
// Iteration counts: every heavy loop's default is multiplied by the env
// var DIALED_FUZZ_ITERS (a small integer scale factor; unset = 1). The
// CI fuzz job raises it; the defaults already sum to >120k iterations
// across the battery. Checked-in seed frames live in tests/fuzz_corpus/
// (path baked in via DIALED_FUZZ_CORPUS_DIR) so any regression replays
// from a file, not from a transcript; setting DIALED_FUZZ_WRITE_CORPUS=1
// regenerates them canonically.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>

#include "common/store_error.h"
#include "helpers.h"
#include "proto/wire.h"
#include "store/codec.h"
#include "store/fleet_store.h"
#include "store/wal.h"

namespace dialed {
namespace {

namespace fs = std::filesystem;

using proto::decode_frame;
using proto::frame_info;
using proto::proto_error;
using proto::wire_v1;
using proto::wire_v2;
using proto::wire_v21;
using test::build_op;

// ---------------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------------

/// DIALED_FUZZ_ITERS multiplies a loop's default iteration count.
std::uint64_t scaled(std::uint64_t dflt) {
  if (const char* env = std::getenv("DIALED_FUZZ_ITERS")) {
    const unsigned long long n = std::strtoull(env, nullptr, 10);
    if (n > 0) return dflt * n;
  }
  return dflt;
}

std::string corpus_dir() {
#ifdef DIALED_FUZZ_CORPUS_DIR
  return DIALED_FUZZ_CORPUS_DIR;
#else
  return "tests/fuzz_corpus";
#endif
}

/// A deterministic synthetic report: real layout numbers, fake crypto —
/// the codec neither computes nor checks MACs, so corpus frames need no
/// device run and regenerate byte-identically forever.
verifier::attestation_report synthetic_report(std::size_t or_len,
                                              std::uint64_t tag) {
  verifier::attestation_report rep;
  rep.er_min = 0xc000;
  rep.er_max = 0xc1fe;
  rep.or_min = 0x0600;
  rep.or_max = static_cast<std::uint16_t>(0x0600 + (or_len ? or_len : 2) - 2);
  rep.exec = true;
  rep.claimed_result = static_cast<std::uint16_t>(tag * 17);
  rep.halt_code = 1;
  for (std::size_t i = 0; i < rep.challenge.size(); ++i) {
    rep.challenge[i] = static_cast<std::uint8_t>(tag + i);
  }
  for (std::size_t i = 0; i < rep.mac.size(); ++i) {
    rep.mac[i] = static_cast<std::uint8_t>(tag * 3 + i);
  }
  rep.or_bytes.resize(or_len);
  std::mt19937_64 rng(0xc0ffee00ull + tag);
  for (auto& b : rep.or_bytes) b = static_cast<std::uint8_t>(rng());
  return rep;
}

void refix_crc(byte_vec& f) {
  if (f.size() < 2) return;
  const auto body = std::span<const std::uint8_t>(f).subspan(0, f.size() - 2);
  const std::uint16_t crc = proto::crc16_ccitt(body);
  f[f.size() - 2] = static_cast<std::uint8_t>(crc & 0xff);
  f[f.size() - 1] = static_cast<std::uint8_t>(crc >> 8);
}

/// One structure-aware mutation step over a frame: the attacks the issue
/// names (truncation, length lies, CRC flips, version skew, baseline
/// desync) plus generic bit/byte noise. Mutations that re-fix the CRC
/// model the stronger attacker who frames damage plausibly.
void mutate(std::mt19937_64& rng, byte_vec& f) {
  if (f.empty()) {
    f.push_back(static_cast<std::uint8_t>(rng()));
    return;
  }
  switch (rng() % 10) {
    case 0:  // truncate anywhere
      f.resize(rng() % f.size());
      return;
    case 1: {  // extend with junk
      const std::size_t n = 1 + rng() % 64;
      for (std::size_t i = 0; i < n; ++i) {
        f.push_back(static_cast<std::uint8_t>(rng()));
      }
      return;
    }
    case 2:  // single bit flip (CRC should catch it)
      f[rng() % f.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
      return;
    case 3:  // byte smash
      f[rng() % f.size()] = static_cast<std::uint8_t>(rng());
      return;
    case 4:  // version skew, CRC fixed: the parser must cope on merit
      if (f.size() > 2) {
        f[2] = static_cast<std::uint8_t>(rng() % 6);
        refix_crc(f);
      }
      return;
    case 5: {  // lie in a 16-bit field at the length-bearing offsets
      static constexpr std::size_t offsets[] = {64, 72, 84, 86, 88, 90};
      const std::size_t off = offsets[rng() % std::size(offsets)];
      if (off + 2 <= f.size()) {
        store_le16(f, off, static_cast<std::uint16_t>(rng()));
        refix_crc(f);
      }
      return;
    }
    case 6: {  // splice a window from elsewhere in the frame
      if (f.size() < 8) return;
      const std::size_t n = 1 + rng() % 16;
      const std::size_t src = rng() % (f.size() - 1);
      const std::size_t dst = rng() % (f.size() - 1);
      for (std::size_t i = 0;
           i < n && src + i < f.size() && dst + i < f.size(); ++i) {
        f[dst + i] = f[src + i];
      }
      refix_crc(f);
      return;
    }
    case 7:  // flip a bit, then make the CRC agree
      f[rng() % f.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
      refix_crc(f);
      return;
    case 8:  // baseline desync: smash seq/hash bytes, CRC fixed
      if (f.size() > 84) {
        f[72 + rng() % 12] = static_cast<std::uint8_t>(rng());
        refix_crc(f);
      }
      return;
    default:  // zero a run (models a dropped radio burst)
      if (f.size() >= 4) {
        const std::size_t start = rng() % (f.size() - 1);
        const std::size_t n =
            std::min<std::size_t>(1 + rng() % 32, f.size() - start);
        std::fill(f.begin() + static_cast<std::ptrdiff_t>(start),
                  f.begin() + static_cast<std::ptrdiff_t>(start + n), 0);
      }
      return;
  }
}

/// Invariants every SUCCESSFUL decode must satisfy, whatever the bytes:
/// known version, and a delta section that is internally consistent
/// (non-empty ascending segments inside full_len, data exactly packed).
void check_decoded_invariants(const proto::decoded_frame& f) {
  ASSERT_TRUE(f.info.version == wire_v1 || f.info.version == wire_v2 ||
              f.info.version == wire_v21);
  if (f.delta.present) {
    ASSERT_EQ(f.info.version, wire_v21);
    ASSERT_TRUE(f.report.or_bytes.empty());
    std::size_t next_min = 0;
    std::size_t data_used = 0;
    for (const auto& seg : f.delta.segments) {
      ASSERT_GT(seg.length, 0u);
      ASSERT_GE(seg.offset, next_min);
      next_min = static_cast<std::size_t>(seg.offset) + seg.length;
      ASSERT_LE(next_min, f.delta.full_len);
      ASSERT_EQ(seg.data_pos, data_used);
      data_used += seg.length;
    }
    ASSERT_EQ(data_used, f.delta.data.size());
  } else {
    ASSERT_NE(f.info.version, wire_v21);
  }
}

/// The canonical seed frames: every wire version and delta shape, built
/// from synthetic reports so they are stable across runs and machines.
struct seed_frame {
  std::string name;       ///< corpus stem, suffixed "__<expected error>"
  byte_vec bytes;
  byte_vec baseline;      ///< ground-truth baseline for v2.1 seeds
  byte_vec ground_truth;  ///< the full OR this frame should reconstruct
};

std::vector<seed_frame> make_seed_frames() {
  std::vector<seed_frame> seeds;
  const auto rep_small = synthetic_report(96, 1);
  const auto rep_big = synthetic_report(2048, 2);

  seeds.push_back({"v1__none", proto::encode_report(rep_small), {},
                   rep_small.or_bytes});
  frame_info v2i;
  v2i.device_id = 7;
  v2i.seq = 3;
  seeds.push_back({"v2__none", proto::encode_frame(v2i, rep_big), {},
                   rep_big.or_bytes});

  // v2.1, sparse delta: a handful of changed ranges over a big OR.
  auto cur = rep_big;
  cur.or_bytes[5] ^= 0x80;
  for (std::size_t i = 700; i < 740; ++i) cur.or_bytes[i] ^= 0x55;
  cur.or_bytes[2047] ^= 0x01;
  frame_info v21i;
  v21i.device_id = 7;
  v21i.seq = 4;
  seeds.push_back({"v21_sparse__none",
                   proto::encode_delta_frame(v21i, cur, 3, rep_big.or_bytes),
                   rep_big.or_bytes, cur.or_bytes});
  // v2.1, empty delta (steady-state poll: identical OR).
  seeds.push_back({"v21_empty__none",
                   proto::encode_delta_frame(v21i, rep_big, 3,
                                             rep_big.or_bytes),
                   rep_big.or_bytes, rep_big.or_bytes});
  // v2.1, worst case: every byte changed (delta degenerates to one run).
  auto churn = rep_small;
  for (auto& b : churn.or_bytes) b = static_cast<std::uint8_t>(~b);
  seeds.push_back({"v21_churn__none",
                   proto::encode_delta_frame(v21i, churn, 3,
                                             rep_small.or_bytes),
                   rep_small.or_bytes, churn.or_bytes});
  return seeds;
}

/// Deterministically-corrupted corpus entries: the classic attacks, with
/// the expected typed error baked into the file name.
std::vector<seed_frame> make_corrupt_frames() {
  std::vector<seed_frame> out;
  const auto seeds = make_seed_frames();
  const auto& v2 = seeds[1].bytes;
  const auto& v21 = seeds[2].bytes;

  const auto with = [](byte_vec f, auto&& fn) {
    fn(f);
    return f;
  };
  out.push_back({"empty__truncated", {}, {}, {}});
  out.push_back({"v2_cut_header__truncated",
                 byte_vec(v2.begin(), v2.begin() + 40), {}, {}});
  out.push_back({"v21_cut_header__truncated",
                 byte_vec(v21.begin(), v21.begin() + 80), {}, {}});
  out.push_back({"v2_bad_magic__bad_magic",
                 with(v2, [](byte_vec& f) { f[0] ^= 0xff; }), {}, {}});
  out.push_back({"v2_bad_version__bad_version", with(v2, [](byte_vec& f) {
                   f[2] = 9;
                   refix_crc(f);
                 }),
                 {}, {}});
  out.push_back({"v2_crc_flip__bad_crc",
                 with(v2, [](byte_vec& f) { f[100] ^= 0x01; }), {}, {}});
  out.push_back({"v21_crc_flip__bad_crc",
                 with(v21, [](byte_vec& f) { f[89] ^= 0x01; }), {}, {}});
  out.push_back({"v2_len_lie__bad_length", with(v2, [](byte_vec& f) {
                   store_le16(f, 72, 9);
                   refix_crc(f);
                 }),
                 {}, {}});
  out.push_back({"v21_segcount_lie__bad_length",
                 with(v21, [](byte_vec& f) {
                   store_le16(f, 86, 200);
                   refix_crc(f);
                 }),
                 {}, {}});
  out.push_back({"v21_seg_overflow__bad_length",
                 with(v21, [](byte_vec& f) {
                   store_le16(f, 84, 4);  // full_len shrunk under segments
                   refix_crc(f);
                 }),
                 {}, {}});
  // Decodes cleanly — the HUB rejects it later as baseline_mismatch.
  out.push_back({"v21_baseline_desync__none",
                 with(v21, [](byte_vec& f) {
                   f[76] ^= 0xff;
                   refix_crc(f);
                 }),
                 {}, {}});
  return out;
}

proto_error expected_from_name(const std::string& stem) {
  const auto pos = stem.rfind("__");
  EXPECT_NE(pos, std::string::npos) << stem;
  const std::string want = stem.substr(pos + 2);
  for (std::size_t i = 0; i < proto::proto_error_count; ++i) {
    const auto e = static_cast<proto_error>(i);
    if (proto::to_string(e) == want) return e;
  }
  ADD_FAILURE() << "corpus name encodes no proto_error: " << stem;
  return proto_error::none;
}

// ---------------------------------------------------------------------------
// Corpus: regenerate (DIALED_FUZZ_WRITE_CORPUS=1) or replay
// ---------------------------------------------------------------------------

TEST(wire_fuzz, corpus_replays_with_the_recorded_errors) {
  const fs::path dir = corpus_dir();
  if (std::getenv("DIALED_FUZZ_WRITE_CORPUS") != nullptr) {
    fs::create_directories(dir);
    for (const auto& list : {make_seed_frames(), make_corrupt_frames()}) {
      for (const auto& s : list) {
        std::ofstream out(dir / (s.name + ".bin"), std::ios::binary);
        out.write(reinterpret_cast<const char*>(s.bytes.data()),
                  static_cast<std::streamsize>(s.bytes.size()));
      }
    }
  }
  ASSERT_TRUE(fs::exists(dir)) << dir << " missing — corpus not checked in";
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".bin") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 14u);
  for (const auto& p : files) {
    std::ifstream in(p, std::ios::binary);
    const byte_vec bytes((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    const auto r = decode_frame(bytes);
    EXPECT_EQ(r.error, expected_from_name(p.stem().string())) << p;
    if (r.ok()) check_decoded_invariants(r.frame);
  }
}

TEST(wire_fuzz, checked_in_corpus_matches_the_generators) {
  // The corpus is not decoration: if an encoder change alters frame
  // bytes, the checked-in files must be regenerated CONSCIOUSLY
  // (DIALED_FUZZ_WRITE_CORPUS=1), because old captured frames must keep
  // decoding forever. This test pins the two together.
  const fs::path dir = corpus_dir();
  for (const auto& list : {make_seed_frames(), make_corrupt_frames()}) {
    for (const auto& s : list) {
      const fs::path p = dir / (s.name + ".bin");
      ASSERT_TRUE(fs::exists(p)) << p;
      std::ifstream in(p, std::ios::binary);
      const byte_vec bytes((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
      EXPECT_EQ(bytes, s.bytes) << p << " diverged from its generator — "
                                << "rerun with DIALED_FUZZ_WRITE_CORPUS=1 "
                                << "if the change is intentional";
    }
  }
}

// ---------------------------------------------------------------------------
// Layer A: pure garbage
// ---------------------------------------------------------------------------

TEST(wire_fuzz, random_garbage_never_crashes_the_decoder) {
  std::mt19937_64 rng(0x6a2ba6e5eed0001ull);
  byte_vec buf;
  proto::decoded_frame scratch;
  const std::uint64_t iters = scaled(30'000);
  for (std::uint64_t i = 0; i < iters; ++i) {
    buf.resize(rng() % 320);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    // Occasionally plant the magic/version so deeper paths get traffic.
    if (buf.size() >= 3 && rng() % 2 == 0) {
      buf[0] = 0xa7;
      buf[1] = 0xd1;
      buf[2] = static_cast<std::uint8_t>(1 + rng() % 3);
      if (rng() % 2 == 0) refix_crc(buf);
    }
    // The into-variant (the hub's hot path, reused scratch) must agree
    // with the allocating one on every input.
    ASSERT_EQ(proto::decode_frame_into(buf, scratch),
              decode_frame(buf).error);
    if (decode_frame(buf).ok()) check_decoded_invariants(scratch);
  }
}

// ---------------------------------------------------------------------------
// Layer B: structure-aware mutants of valid frames
// ---------------------------------------------------------------------------

TEST(wire_fuzz, mutated_frames_decode_to_typed_errors_or_sane_frames) {
  const auto seeds = make_seed_frames();
  std::mt19937_64 rng(0x5eed00a7a7e0002ull);
  byte_vec frame;
  byte_vec rebuilt;
  proto::decoded_frame scratch;
  const std::uint64_t iters = scaled(40'000);
  std::uint64_t decoded_ok = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto& seed = seeds[rng() % seeds.size()];
    frame = seed.bytes;
    const std::size_t steps = 1 + rng() % 3;
    for (std::size_t s = 0; s < steps; ++s) mutate(rng, frame);
    const auto err = proto::decode_frame_into(frame, scratch);
    if (err != proto_error::none) continue;  // typed rejection: good
    ++decoded_ok;
    // A surviving mutant must be structurally sane...
    check_decoded_invariants(scratch);
    // ...and its reconstruction, when it still applies over the true
    // baseline, must be bounded by its own declared full_len — and
    // byte-exact when the mutations happened to cancel out.
    if (scratch.delta.present && !seed.baseline.empty()) {
      const auto ar =
          proto::apply_or_delta(scratch.delta, seed.baseline, rebuilt);
      if (frame == seed.bytes) {
        ASSERT_EQ(ar, proto_error::none);
        ASSERT_EQ(rebuilt, seed.ground_truth);
      } else if (ar == proto_error::none) {
        ASSERT_EQ(rebuilt.size(), scratch.delta.full_len);
      }
    }
  }
  // CRC-refixing mutations must actually get some frames through the
  // framing layer, or the deeper validation saw no adversarial traffic.
  ASSERT_GT(decoded_ok, 0u);
}

// ---------------------------------------------------------------------------
// Layer C: delta codec differential — apply(decode(encode(x))) == x
// ---------------------------------------------------------------------------

TEST(wire_fuzz, delta_codec_round_trips_against_ground_truth) {
  std::mt19937_64 rng(0xde17ac0dec0003ull);
  byte_vec frame;
  byte_vec rebuilt(4096, 0xee);  // deliberately stale scratch
  proto::decoded_frame scratch;
  const std::uint64_t iters = scaled(30'000);
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::size_t base_len = rng() % 2100;
    byte_vec baseline(base_len);
    for (auto& b : baseline) b = static_cast<std::uint8_t>(rng());

    // Current OR: the baseline, resized and sparsely perturbed — the
    // polling-loop shape the delta codec exists for.
    auto rep = synthetic_report(0, i);
    rep.or_bytes = baseline;
    if (rng() % 4 == 0) {
      rep.or_bytes.resize(rng() % 2100, static_cast<std::uint8_t>(rng()));
    }
    const std::size_t edits = rng() % 12;
    for (std::size_t e = 0; e < edits && !rep.or_bytes.empty(); ++e) {
      const std::size_t at = rng() % rep.or_bytes.size();
      const std::size_t run =
          std::min<std::size_t>(1 + rng() % 40, rep.or_bytes.size() - at);
      for (std::size_t k = 0; k < run; ++k) {
        rep.or_bytes[at + k] = static_cast<std::uint8_t>(rng());
      }
    }

    frame_info info;
    info.device_id = static_cast<std::uint32_t>(rng());
    info.seq = static_cast<std::uint32_t>(rng());
    const std::uint32_t bseq = static_cast<std::uint32_t>(rng());
    ASSERT_EQ(
        proto::encode_delta_frame_into(info, rep, bseq, baseline, frame),
        proto_error::none);
    // Determinism: the encoder is a pure function of its inputs.
    ASSERT_EQ(frame, proto::encode_delta_frame(info, rep, bseq, baseline));

    ASSERT_EQ(proto::decode_frame_into(frame, scratch), proto_error::none);
    ASSERT_TRUE(scratch.delta.present);
    ASSERT_EQ(scratch.delta.baseline_seq, bseq);
    ASSERT_EQ(scratch.delta.baseline_hash,
              proto::or_baseline_hash(bseq, baseline));
    ASSERT_EQ(proto::apply_or_delta(scratch.delta, baseline, rebuilt),
              proto_error::none);
    // Byte-exact reconstruction, with reused (stale) scratch throughout.
    ASSERT_EQ(rebuilt, rep.or_bytes);
  }
}

// ---------------------------------------------------------------------------
// Layer D: end to end — the hub never accepts a wrong-OR frame
// ---------------------------------------------------------------------------

TEST(wire_fuzz, hub_never_accepts_a_frame_with_a_wrong_or) {
  const auto prog = build_op("int op(int a, int b) { return a + b; }", "op",
                             instr::instrumentation::dialed);
  fleet::device_registry reg(byte_vec(32, 0x42));
  const auto id = reg.provision(prog);
  fleet::hub_config cfg;
  cfg.sequential_batch = true;
  cfg.shards = 1;
  cfg.max_outstanding = 4;
  fleet::verifier_hub hub(reg, cfg);
  proto::prover_device dev(prog, reg.derive_key(id));
  proto::delta_emitter emitter;

  std::mt19937_64 rng(0xadd5eed00d1a1edull);
  byte_vec mutant;
  byte_vec rebuilt;
  proto::decoded_frame scratch;

  // The test's mirror of the hub's baseline table, updated by the same
  // accepted-only/max-seq rule — so accepted delta frames can be
  // reconstructed here and compared against the ground truth.
  byte_vec tracked_baseline;
  std::uint32_t tracked_seq = 0;
  bool have_baseline = false;

  const std::uint64_t rounds = scaled(18);
  std::uint64_t genuine_accepted = 0;
  std::uint64_t mac_reaching_mutants = 0;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    const auto grant = hub.challenge(id);
    proto::invocation inv;
    inv.args[0] = static_cast<std::uint16_t>(round);
    inv.args[1] = static_cast<std::uint16_t>(rng() % 100);
    const auto rep = dev.invoke(grant.nonce, inv);
    const byte_vec genuine = emitter.encode(id, grant.seq, rep);
    const byte_vec& truth = rep.or_bytes;

    // Property 2: any ACCEPTED submission must carry (full frame) or
    // reconstruct (delta frame) exactly the ground-truth OR.
    const auto check_accepted = [&](std::span<const std::uint8_t> f,
                                    const fleet::attest_result& res) {
      ASSERT_EQ(proto::decode_frame_into(f, scratch), proto_error::none);
      if (scratch.delta.present) {
        ASSERT_TRUE(have_baseline);
        ASSERT_EQ(
            proto::apply_or_delta(scratch.delta, tracked_baseline, rebuilt),
            proto_error::none);
        ASSERT_EQ(rebuilt, truth) << "round " << round;
      } else {
        ASSERT_EQ(scratch.report.or_bytes, truth) << "round " << round;
      }
      if (!have_baseline || res.seq > tracked_seq) {
        have_baseline = true;
        tracked_seq = res.seq;
        tracked_baseline = truth;
      }
    };

    const auto submit_mutants = [&] {
      for (std::uint64_t m = 0; m < 48; ++m) {
        mutant = genuine;
        const std::size_t steps = 1 + rng() % 2;
        for (std::size_t s = 0; s < steps; ++s) mutate(rng, mutant);
        // A mutation chain can be a byte-level no-op; submitting the
        // genuine bytes here would burn the nonce outside the emitter's
        // view and prove nothing — skip those.
        if (mutant == genuine) continue;
        const auto res = hub.submit(mutant);
        if (res.error == proto_error::none) ++mac_reaching_mutants;
        if (res.accepted()) check_accepted(mutant, res);
      }
    };

    // Most rounds the genuine frame goes first (and must be accepted);
    // every third round the mutants go first, so mutants reach the MAC
    // with a LIVE nonce — the arm where a wrong-OR acceptance would
    // have to show up.
    if (round % 3 != 0) {
      auto res = hub.submit(genuine);
      if (res.error == proto_error::baseline_mismatch) {
        // A surviving mutant from an earlier round advanced the hub's
        // baseline behind the emitter's back; drive the documented
        // fallback — drop the mirror, resend full on the same nonce.
        emitter.note_result(id, grant.seq, rep, res.error, false);
        const byte_vec full = emitter.encode(id, grant.seq, rep);
        res = hub.submit(full);
        ASSERT_TRUE(res.accepted()) << "round " << round << ": "
                                    << proto::to_string(res.error);
        check_accepted(full, res);
      } else {
        ASSERT_TRUE(res.accepted()) << "round " << round << ": "
                                    << proto::to_string(res.error);
        check_accepted(genuine, res);
      }
      ++genuine_accepted;
      emitter.note_result(id, grant.seq, rep, res.error, true);
      submit_mutants();
    } else {
      submit_mutants();
      const auto res = hub.submit(genuine);
      if (res.accepted()) {
        check_accepted(genuine, res);
        ++genuine_accepted;
      } else {
        // A mutant with intact nonce bytes burned the challenge: the
        // genuine frame now classifies as a typed replay — fine, but it
        // must never be silently mis-verified.
        ASSERT_NE(res.error, proto_error::none) << "round " << round;
      }
      emitter.note_result(id, grant.seq, rep, res.error, res.accepted());
    }
  }
  // The battery must have exercised the accept path AND pushed mutants
  // all the way to MAC verification, not just bounced them off framing.
  ASSERT_GE(genuine_accepted, rounds / 2);
  ASSERT_GT(mac_reaching_mutants, 0u);
}

// ---------------------------------------------------------------------------
// Layer E: store bytes — WAL records and snapshots fail closed
// ---------------------------------------------------------------------------

/// A synthetic WAL image: `n` framed records of plausible payloads.
byte_vec synth_wal(std::mt19937_64& rng, std::size_t n) {
  byte_vec img;
  for (std::size_t i = 0; i < n; ++i) {
    byte_vec payload(1 + rng() % 60);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    payload[0] = static_cast<std::uint8_t>(rng() % 9);  // record type-ish
    byte_vec hdr(8);
    store_le32(hdr, 0, static_cast<std::uint32_t>(payload.size()));
    store_le32(hdr, 4, store::crc32(payload));
    img.insert(img.end(), hdr.begin(), hdr.end());
    img.insert(img.end(), payload.begin(), payload.end());
  }
  return img;
}

TEST(wire_fuzz, wal_images_parse_or_throw_typed_errors) {
  std::mt19937_64 rng(0x3a110f0f5eed04ull);
  const std::uint64_t iters = scaled(20'000);
  for (std::uint64_t i = 0; i < iters; ++i) {
    byte_vec img = synth_wal(rng, rng() % 6);
    switch (rng() % 5) {
      case 0:
        if (!img.empty()) img.resize(rng() % img.size());
        break;
      case 1:
        if (!img.empty()) {
          img[rng() % img.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        }
        break;
      case 2:  // length-field lie
        if (img.size() >= 4) {
          store_le32(img, rng() % (img.size() - 3),
                     static_cast<std::uint32_t>(rng()));
        }
        break;
      case 3: {  // junk tail (torn append)
        const std::size_t n = rng() % 64;
        for (std::size_t k = 0; k < n; ++k) {
          img.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
      default:
        break;  // clean image: must parse
    }
    try {
      const auto parsed = store::read_wal(img);
      ASSERT_LE(parsed.valid_bytes, img.size());
    } catch (const store_error&) {
      // typed, fail-closed: exactly what mid-log corruption should do
    }
  }
}

TEST(wire_fuzz, mutated_store_dirs_load_exactly_or_fail_closed) {
  // One real store with real history (including a v2.1 baseline in the
  // snapshot), then every iteration mutates its bytes into a fresh dir
  // and reopens: open() must load a coherent fleet or throw typed.
  const fs::path root =
      fs::path(::testing::TempDir()) / "dialed-wire-fuzz-store";
  fs::remove_all(root);
  const fs::path pristine = root / "pristine";
  {
    store::fleet_store::options o;
    o.master_key = byte_vec(32, 0x42);
    o.hub.sequential_batch = true;
    o.hub.shards = 1;
    o.compact_on_open = false;
    auto st = store::fleet_store::open(pristine.string(), o);
    const auto prog = build_op("int op(int a, int b) { return a + b; }",
                               "op", instr::instrumentation::dialed);
    const auto id = st.registry->provision(prog);
    proto::prover_device dev(prog, st.registry->find(id)->key);
    for (int round = 0; round < 2; ++round) {
      const auto g = st.hub->challenge(id);
      proto::invocation inv;
      inv.args[0] = static_cast<std::uint16_t>(round);
      proto::frame_info info;
      info.device_id = id;
      info.seq = g.seq;
      const auto r = st.hub->submit(
          proto::encode_frame(info, dev.invoke(g.nonce, inv)));
      ASSERT_TRUE(r.accepted());
    }
    st.store->compact();          // snapshot carries the baseline section
    (void)st.hub->challenge(id);  // plus a live WAL record on top
  }
  const auto read_all = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return byte_vec((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  };
  const byte_vec snap = read_all(pristine / "snapshot.dls");
  const byte_vec wal = read_all(pristine / "wal-1.log");
  ASSERT_FALSE(snap.empty());
  ASSERT_FALSE(wal.empty());

  std::mt19937_64 rng(0x5707ef0220005ull);
  const std::uint64_t iters = scaled(200);
  const fs::path work = root / "mutated";
  for (std::uint64_t i = 0; i < iters; ++i) {
    fs::remove_all(work);
    fs::create_directories(work);
    byte_vec s = snap;
    byte_vec w = wal;
    for (byte_vec* f : {&s, &w}) {
      if (rng() % 3 == 0 || f->empty()) continue;
      switch (rng() % 3) {
        case 0:
          f->resize(rng() % f->size());
          break;
        case 1:
          (*f)[rng() % f->size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
          break;
        default: {
          const std::size_t n = 1 + rng() % 8;
          for (std::size_t k = 0; k < n && !f->empty(); ++k) {
            (*f)[rng() % f->size()] = static_cast<std::uint8_t>(rng());
          }
          break;
        }
      }
    }
    const auto write_all = [](const fs::path& p, const byte_vec& b) {
      std::ofstream out(p, std::ios::binary);
      out.write(reinterpret_cast<const char*>(b.data()),
                static_cast<std::streamsize>(b.size()));
    };
    write_all(work / "snapshot.dls", s);
    write_all(work / "wal-1.log", w);

    store::fleet_store::options o;
    o.master_key = byte_vec(32, 0x42);
    o.hub.sequential_batch = true;
    o.hub.shards = 1;
    o.compact_on_open = false;
    try {
      auto st = store::fleet_store::open(work.string(), o);
      // Loaded: it must be a coherent fleet (never a half-applied one).
      ASSERT_LE(st.registry->size(), 1u);
      for (const auto did : st.registry->ids()) {
        ASSERT_NE(st.registry->find(did), nullptr);
        ASSERT_NE(st.registry->find(did)->firmware, nullptr);
      }
    } catch (const store_error&) {
      // the typed fail-closed path — the expected answer to corruption
    } catch (const error&) {
      // other typed dialed errors (e.g. a mutated-but-CRC-colliding
      // program image failing artifact construction) are fail-closed too
    }
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace dialed
