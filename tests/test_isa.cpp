// MSP430 ISA model: encode/decode round-trips over the full opcode ×
// addressing-mode space, constant-generator encodings, and the cycle model.
#include <gtest/gtest.h>

#include "common/error.h"
#include "isa/isa.h"

namespace dialed::isa {
namespace {

std::vector<std::uint16_t> enc(const instruction& ins,
                               std::uint16_t addr = 0xc000,
                               bool cg = true) {
  return encode(ins, addr, cg);
}

decoded dec(const std::vector<std::uint16_t>& words,
            std::uint16_t addr = 0xc000) {
  return decode(words, addr);
}

// ---------------------------------------------------------------------------
// Round-trip: every format-I opcode with representative operand shapes.
// ---------------------------------------------------------------------------

struct rt_case {
  opcode op;
  operand src;
  operand dst;
  bool byte_op;
};

class format1_roundtrip : public ::testing::TestWithParam<rt_case> {};

TEST_P(format1_roundtrip, encode_then_decode_is_identity) {
  const auto& c = GetParam();
  instruction ins;
  ins.op = c.op;
  ins.byte_op = c.byte_op;
  ins.src = c.src;
  ins.dst = c.dst;
  const auto words = enc(ins);
  const auto d = dec(words);
  EXPECT_EQ(d.ins, ins);
  EXPECT_EQ(d.words, static_cast<int>(words.size()));
}

std::vector<rt_case> format1_cases() {
  std::vector<rt_case> out;
  const opcode ops[] = {opcode::mov,  opcode::add, opcode::addc,
                        opcode::subc, opcode::sub, opcode::cmp,
                        opcode::dadd, opcode::bit, opcode::bic,
                        opcode::bis,  opcode::xor_, opcode::and_};
  for (const opcode op : ops) {
    out.push_back({op, reg_op(10), reg_op(11), false});
    out.push_back({op, imm_op(0x1234), reg_op(15), false});
    out.push_back({op, ind_op(12), idx_op(13, 6), false});
    out.push_back({op, ind_inc_op(14), abs_op(0x0200), false});
    out.push_back({op, idx_op(9, 0xfffe), reg_op(7), true});
    out.push_back({op, abs_op(0x0019), reg_op(15), true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(all_ops, format1_roundtrip,
                         ::testing::ValuesIn(format1_cases()));

// ---------------------------------------------------------------------------
// Constant generators
// ---------------------------------------------------------------------------

struct cg_case {
  std::int32_t value;
  int expected_words;
};

class cg_encoding : public ::testing::TestWithParam<cg_case> {};

TEST_P(cg_encoding, immediate_uses_constant_generator_when_possible) {
  const auto& c = GetParam();
  instruction ins;
  ins.op = opcode::mov;
  ins.src = imm_op(static_cast<std::uint16_t>(c.value));
  ins.dst = reg_op(15);
  EXPECT_EQ(encoded_words(ins, true), c.expected_words);
  const auto words = enc(ins);
  EXPECT_EQ(static_cast<int>(words.size()), c.expected_words);
  const auto d = dec(words);
  EXPECT_EQ(d.ins.src.mode, addr_mode::immediate);
  EXPECT_EQ(d.ins.src.ext, static_cast<std::uint16_t>(c.value));
  EXPECT_EQ(d.cg_src, c.expected_words == 1);
}

INSTANTIATE_TEST_SUITE_P(values, cg_encoding,
                         ::testing::Values(cg_case{0, 1}, cg_case{1, 1},
                                           cg_case{2, 1}, cg_case{4, 1},
                                           cg_case{8, 1}, cg_case{-1, 1},
                                           cg_case{3, 2}, cg_case{5, 2},
                                           cg_case{16, 2}, cg_case{0x1234, 2},
                                           cg_case{static_cast<std::int32_t>(
                                                       0xfffe),
                                                   2}));

TEST(cg, disabled_forces_extension_word) {
  instruction ins;
  ins.op = opcode::mov;
  ins.src = imm_op(1);
  ins.dst = reg_op(15);
  EXPECT_EQ(encoded_words(ins, false), 2);
  const auto words = enc(ins, 0xc000, false);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[1], 1);
}

// ---------------------------------------------------------------------------
// Format II and jumps
// ---------------------------------------------------------------------------

TEST(format2, roundtrip_core_ops) {
  for (const opcode op :
       {opcode::rrc, opcode::swpb, opcode::rra, opcode::sxt, opcode::push,
        opcode::call}) {
    instruction ins;
    ins.op = op;
    ins.dst = reg_op(11);
    const auto d = dec(enc(ins));
    EXPECT_EQ(d.ins, ins) << mnemonic(op);
  }
}

TEST(format2, push_immediate) {
  instruction ins;
  ins.op = opcode::push;
  ins.dst = imm_op(0x55aa);
  const auto d = dec(enc(ins));
  EXPECT_EQ(d.ins.dst.mode, addr_mode::immediate);
  EXPECT_EQ(d.ins.dst.ext, 0x55aa);
}

TEST(format2, reti_is_single_word) {
  instruction ins;
  ins.op = opcode::reti;
  const auto words = enc(ins);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0x1300);
  EXPECT_EQ(dec(words).ins.op, opcode::reti);
}

TEST(format2, call_has_no_byte_form) {
  instruction ins;
  ins.op = opcode::call;
  ins.byte_op = true;
  ins.dst = reg_op(10);
  EXPECT_THROW(enc(ins), error);
}

class jump_roundtrip : public ::testing::TestWithParam<opcode> {};

TEST_P(jump_roundtrip, forward_and_backward_targets) {
  for (const int delta : {-1024, -2, 0, 2, 64, 1022}) {
    instruction ins;
    ins.op = GetParam();
    ins.target = static_cast<std::uint16_t>(0xc100 + delta);
    const auto words = encode(ins, 0xc0fe);
    ASSERT_EQ(words.size(), 1u);
    const auto d = decode(words, 0xc0fe);
    EXPECT_EQ(d.ins.op, ins.op);
    EXPECT_EQ(d.ins.target, ins.target) << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(all_jumps, jump_roundtrip,
                         ::testing::Values(opcode::jne, opcode::jeq,
                                           opcode::jnc, opcode::jc,
                                           opcode::jn, opcode::jge,
                                           opcode::jl, opcode::jmp));

TEST(jump, out_of_range_rejected) {
  instruction ins;
  ins.op = opcode::jmp;
  ins.target = 0xd000;  // 4KB away
  EXPECT_THROW(encode(ins, 0xc000), error);
}

TEST(jump, odd_offset_rejected) {
  instruction ins;
  ins.op = opcode::jmp;
  ins.target = 0xc003;
  EXPECT_THROW(encode(ins, 0xc000), error);
}

// ---------------------------------------------------------------------------
// Symbolic (PC-relative) mode
// ---------------------------------------------------------------------------

TEST(symbolic, roundtrip_preserves_absolute_target) {
  instruction ins;
  ins.op = opcode::mov;
  ins.src = {addr_mode::symbolic, REG_PC, 0xd234};
  ins.dst = reg_op(15);
  const auto words = enc(ins, 0xc000);
  const auto d = decode(words, 0xc000);
  EXPECT_EQ(d.ins.src.mode, addr_mode::symbolic);
  EXPECT_EQ(d.ins.src.ext, 0xd234);
}

// ---------------------------------------------------------------------------
// Cycle model (SLAU049 tables)
// ---------------------------------------------------------------------------

struct cycle_case {
  instruction ins;
  bool cg;
  int expected;
};

class cycle_model : public ::testing::TestWithParam<cycle_case> {};

TEST_P(cycle_model, matches_family_guide) {
  const auto& c = GetParam();
  EXPECT_EQ(cycles(c.ins, c.cg), c.expected);
}

instruction f1(opcode op, operand s, operand d) {
  instruction i;
  i.op = op;
  i.src = s;
  i.dst = d;
  return i;
}
instruction f2(opcode op, operand d) {
  instruction i;
  i.op = op;
  i.dst = d;
  return i;
}
instruction jmp_ins() {
  instruction i;
  i.op = opcode::jmp;
  i.target = 0xc000;
  return i;
}

INSTANTIATE_TEST_SUITE_P(
    slau049, cycle_model,
    ::testing::Values(
        // Format I
        cycle_case{f1(opcode::mov, reg_op(4), reg_op(5)), false, 1},
        cycle_case{f1(opcode::mov, reg_op(4), reg_op(REG_PC)), false, 2},
        cycle_case{f1(opcode::mov, imm_op(100), reg_op(5)), false, 2},
        cycle_case{f1(opcode::mov, imm_op(1), reg_op(5)), true, 1},
        cycle_case{f1(opcode::mov, ind_op(4), reg_op(5)), false, 2},
        cycle_case{f1(opcode::mov, ind_inc_op(4), reg_op(REG_PC)), false, 3},
        cycle_case{f1(opcode::mov, idx_op(4, 2), reg_op(5)), false, 3},
        cycle_case{f1(opcode::mov, reg_op(4), idx_op(5, 2)), false, 4},
        cycle_case{f1(opcode::add, ind_op(4), idx_op(5, 2)), false, 5},
        cycle_case{f1(opcode::add, idx_op(4, 2), idx_op(5, 4)), false, 6},
        cycle_case{f1(opcode::add, abs_op(0x200), abs_op(0x202)), false, 6},
        cycle_case{f1(opcode::mov, imm_op(100), idx_op(5, 2)), false, 5},
        // RET == mov @sp+, pc
        cycle_case{f1(opcode::mov, ind_inc_op(REG_SP), reg_op(REG_PC)),
                   false, 3},
        // Format II
        cycle_case{f2(opcode::rra, reg_op(5)), false, 1},
        cycle_case{f2(opcode::rra, ind_op(5)), false, 3},
        cycle_case{f2(opcode::rra, idx_op(5, 2)), false, 4},
        cycle_case{f2(opcode::push, reg_op(5)), false, 3},
        cycle_case{f2(opcode::push, imm_op(100)), false, 4},
        cycle_case{f2(opcode::call, reg_op(5)), false, 4},
        cycle_case{f2(opcode::call, imm_op(0xc000)), false, 5},
        // Jumps: always 2
        cycle_case{jmp_ins(), false, 2}));

TEST(cycles, reti_is_five) {
  instruction i;
  i.op = opcode::reti;
  EXPECT_EQ(cycles(i, false), 5);
}

// ---------------------------------------------------------------------------
// Misc
// ---------------------------------------------------------------------------

TEST(mnemonics, lookup_both_ways) {
  EXPECT_EQ(mnemonic(opcode::xor_), "xor");
  EXPECT_EQ(opcode_from_mnemonic("xor"), opcode::xor_);
  EXPECT_EQ(opcode_from_mnemonic("jz"), opcode::jeq);
  EXPECT_EQ(opcode_from_mnemonic("jlo"), opcode::jnc);
  EXPECT_EQ(opcode_from_mnemonic("jhs"), opcode::jc);
  EXPECT_EQ(opcode_from_mnemonic("nonsense"), std::nullopt);
}

TEST(decode, rejects_illegal_opcode_word) {
  const std::vector<std::uint16_t> words = {0x0000};
  EXPECT_THROW(decode(words, 0xc000), error);
}

TEST(decode, rejects_truncated_stream) {
  // mov #imm, r15 needs an extension word.
  instruction ins;
  ins.op = opcode::mov;
  ins.src = imm_op(0x1234);
  ins.dst = reg_op(15);
  auto words = enc(ins);
  words.pop_back();
  EXPECT_THROW(decode(words, 0xc000), error);
}

TEST(to_string, renders_readably) {
  instruction ins;
  ins.op = opcode::mov;
  ins.byte_op = true;
  ins.src = ind_op(15);
  ins.dst = reg_op(14);
  EXPECT_EQ(to_string(ins), "mov.b @r15, r14");
}

TEST(modes, memory_touch_classification) {
  EXPECT_FALSE(mode_touches_memory(addr_mode::reg));
  EXPECT_FALSE(mode_touches_memory(addr_mode::immediate));
  EXPECT_TRUE(mode_touches_memory(addr_mode::indexed));
  EXPECT_TRUE(mode_touches_memory(addr_mode::absolute));
  EXPECT_TRUE(mode_touches_memory(addr_mode::indirect));
  EXPECT_TRUE(mode_touches_memory(addr_mode::indirect_inc));
}

}  // namespace
}  // namespace dialed::isa
