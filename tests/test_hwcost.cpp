// Table I reproduction: published numbers, structural model validation, and
// the paper's headline ratios.
#include <gtest/gtest.h>

#include "hwcost/hwcost.h"

namespace dialed::hwcost {
namespace {

const technique& row(const std::string& name) {
  static const auto rows = table1_techniques();
  for (const auto& t : rows) {
    if (t.name == name) return t;
  }
  throw std::runtime_error("missing row " + name);
}

TEST(table1, row_order_matches_paper) {
  const auto rows = table1_techniques();
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0].name, "C-FLAT");
  EXPECT_EQ(rows[1].name, "OAT");
  EXPECT_EQ(rows[2].name, "Atrium");
  EXPECT_EQ(rows[3].name, "LO-FAT");
  EXPECT_EQ(rows[4].name, "LiteHAX");
  EXPECT_EQ(rows[5].name, "Tiny-CFA");
  EXPECT_EQ(rows[6].name, "DIALED");
}

TEST(table1, functionality_matrix_matches_paper) {
  EXPECT_TRUE(row("C-FLAT").supports_cfa);
  EXPECT_FALSE(row("C-FLAT").supports_dfa);
  EXPECT_TRUE(row("OAT").supports_dfa);
  EXPECT_FALSE(row("Atrium").supports_dfa);
  EXPECT_FALSE(row("LO-FAT").supports_dfa);
  EXPECT_TRUE(row("LiteHAX").supports_dfa);
  EXPECT_FALSE(row("Tiny-CFA").supports_dfa);
  EXPECT_TRUE(row("DIALED").supports_cfa);
  EXPECT_TRUE(row("DIALED").supports_dfa);
}

TEST(table1, trustzone_rows_have_no_lut_numbers) {
  EXPECT_TRUE(row("C-FLAT").trustzone);
  EXPECT_TRUE(row("OAT").trustzone);
  EXPECT_FALSE(row("C-FLAT").published_luts.has_value());
  EXPECT_FALSE(row("OAT").published_luts.has_value());
}

TEST(table1, published_numbers_match_paper) {
  EXPECT_EQ(row("Atrium").published_luts, 10640);
  EXPECT_EQ(row("Atrium").published_regs, 15960);
  EXPECT_EQ(row("LO-FAT").published_luts, 3192);
  EXPECT_EQ(row("LO-FAT").published_regs, 4256);
  EXPECT_EQ(row("LiteHAX").published_luts, 1596);
  EXPECT_EQ(row("LiteHAX").published_regs, 2128);
  EXPECT_EQ(row("Tiny-CFA").published_luts, 302);
  EXPECT_EQ(row("Tiny-CFA").published_regs, 44);
  EXPECT_EQ(row("DIALED").published_luts, 302);
  EXPECT_EQ(row("DIALED").published_regs, 44);
}

TEST(table1, overhead_percentages_match_paper) {
  const auto base = msp430_baseline();
  EXPECT_NEAR(overhead_percent(302, base.luts), 16.0, 0.5);
  EXPECT_NEAR(overhead_percent(44, base.registers), 6.0, 0.5);
  EXPECT_NEAR(overhead_percent(1596, base.luts), 84.0, 0.5);
  EXPECT_NEAR(overhead_percent(2128, base.registers), 308.0, 0.5);
  EXPECT_NEAR(overhead_percent(10640, base.luts), 559.0, 0.5);
  EXPECT_NEAR(overhead_percent(15960, base.registers), 2310.0, 2.0);
  EXPECT_NEAR(overhead_percent(3192, base.luts), 168.0, 0.5);
  EXPECT_NEAR(overhead_percent(4256, base.registers), 616.0, 0.5);
}

TEST(model, structural_estimates_track_published_synthesis) {
  // One shared parameter set must land within 6% of every published row.
  for (const auto& t : table1_techniques()) {
    if (!t.structure || !t.published_luts) continue;
    const auto m = estimate(*t.structure);
    EXPECT_NEAR(m.luts, *t.published_luts, 0.06 * *t.published_luts)
        << t.name;
    EXPECT_NEAR(m.registers, *t.published_regs,
                0.06 * *t.published_regs)
        << t.name;
  }
}

TEST(model, dialed_hardware_is_pure_monitor_logic) {
  const auto& d = row("DIALED");
  ASSERT_TRUE(d.structure.has_value());
  EXPECT_EQ(d.structure->hash_cores, 0);
  EXPECT_EQ(d.structure->hash_cores_lite, 0);
  EXPECT_EQ(d.structure->branch_monitors, 0);
  EXPECT_GT(d.structure->comparators16, 0);
}

TEST(ratios, dialed_vs_litehax_headline_claims) {
  // Paper: "≈5× lower LUTs and ≈50× lower registers than LiteHAX".
  const double luts = ratio_vs_dialed_luts(row("LiteHAX"));
  const double regs = ratio_vs_dialed_regs(row("LiteHAX"));
  EXPECT_NEAR(luts, 5.0, 0.5);
  EXPECT_NEAR(regs, 50.0, 2.5);
}

TEST(render, table_contains_all_rows_and_ratios) {
  const auto text = render_table1();
  for (const char* name :
       {"MSP430", "C-FLAT", "OAT", "Atrium", "LO-FAT", "LiteHAX",
        "Tiny-CFA", "DIALED"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("ARM-TrustZone"), std::string::npos);
  EXPECT_NE(text.find("fewer LUTs"), std::string::npos);
}

}  // namespace
}  // namespace dialed::hwcost
