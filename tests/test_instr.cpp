// Instrumentation passes: Tiny-CFA (CF logging, write checks, entry check)
// and DIALED (argument logging, runtime-input logging, Definition-1
// filtering), validated by running instrumented ops and decoding the OR.
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "logfmt/logfmt.h"

namespace dialed::instr {
namespace {

using test::build_op;
using test::test_key;

/// Run an op and return {report, log_bytes, device}; the device keeps the
/// machine alive for state inspection.
struct run_result {
  verifier::attestation_report report;
  int log_bytes = 0;
  std::uint64_t op_cycles = 0;
};

run_result run(const instr::linked_program& prog,
               const proto::invocation& inv) {
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  run_result r;
  r.report = dev.invoke(chal, inv);
  r.log_bytes = dev.last_log_bytes();
  r.op_cycles = dev.last_op_cycles();
  return r;
}

proto::invocation args(std::uint16_t a0 = 0, std::uint16_t a1 = 0) {
  proto::invocation inv;
  inv.args[0] = a0;
  inv.args[1] = a1;
  return inv;
}

constexpr const char* trivial_op = "int op(int a, int b) { return a + b; }";

// ---------------------------------------------------------------------------
// Structural properties of the instrumented assembly
// ---------------------------------------------------------------------------

TEST(tinycfa, entry_check_guards_r4) {
  const auto prog = build_op(trivial_op, "op", instrumentation::tinycfa);
  EXPECT_NE(prog.er_asm_text.find("cmp #OR_MAX, r4"), std::string::npos);
  EXPECT_NE(prog.er_asm_text.find("__er_fail"), std::string::npos);
}

TEST(tinycfa, does_not_touch_reserved_registers_beyond_r4_r5) {
  const auto prog = build_op(trivial_op, "op", instrumentation::dialed);
  // r6/r7 are unused by both codegen and instrumentation.
  EXPECT_EQ(prog.er_asm_text.find("r6"), std::string::npos);
  EXPECT_EQ(prog.er_asm_text.find("r7,"), std::string::npos);
}

TEST(passes, instrumentation_grows_code_monotonically) {
  const auto none = build_op(trivial_op, "op", instrumentation::none);
  const auto cfa = build_op(trivial_op, "op", instrumentation::tinycfa);
  const auto dfa = build_op(trivial_op, "op", instrumentation::dialed);
  EXPECT_LT(none.code_size(), cfa.code_size());
  EXPECT_LT(cfa.code_size(), dfa.code_size());
}

TEST(passes, reject_reserved_register_use_in_source_asm) {
  // Hand-written assembly using r4 must be refused by the pass.
  masm::module_src m = masm::parse(
      "__er_start:\n"
      "        mov @r4, r15\n"
      "        ret\n");
  pass_options opts;
  EXPECT_THROW(dialed_pass(tinycfa_pass(m, opts), opts), error);
}

TEST(paper_fidelity, entry_block_matches_fig4_structure) {
  // Paper Fig. 4(b): first the Tiny-CFA r4 check, then DIALED saves the
  // stack pointer to the OR_MAX slot and logs r8..r15, in that order, each
  // push followed by the decrement and the OR_MIN bounds check.
  const auto prog = build_op(trivial_op, "op", instrumentation::dialed);
  const std::string& a = prog.er_asm_text;
  std::vector<std::size_t> positions;
  auto pos_of = [&](const std::string& needle) {
    const auto p = a.find(needle);
    EXPECT_NE(p, std::string::npos) << needle;
    return p;
  };
  positions.push_back(pos_of("cmp #OR_MAX, r4"));  // Fig. 4 lines 2-4
  positions.push_back(pos_of("mov sp, 0(r4)"));    // lines 5-9: save SP
  for (int r = 8; r <= 15; ++r) {                  // lines 10-25: args
    positions.push_back(pos_of("mov r" + std::to_string(r) + ", 0(r4)"));
  }
  for (std::size_t i = 1; i < positions.size(); ++i) {
    EXPECT_LT(positions[i - 1], positions[i]) << "Fig. 4 ordering";
  }
  // Every push is followed by the word decrement and the bounds check.
  const auto first = positions[1];
  const auto window = a.substr(first, 200);
  EXPECT_NE(window.find("sub #2, r4"), std::string::npos);   // decd r4
  EXPECT_NE(window.find("cmp #OR_MIN, r4"), std::string::npos);
}

TEST(paper_fidelity, fig5_read_stub_structure) {
  // Paper Fig. 5(b): a pointer read gets the stack-range comparison
  // against the saved base (at &OR_MAX) and the current stack pointer.
  const char* src = "int op(int *p) { return *p; }";
  const auto prog = build_op(src, "op", instrumentation::dialed);
  const std::string& a = prog.er_asm_text;
  EXPECT_NE(a.find("cmp sp, r5"), std::string::npos);      // vs current SP
  EXPECT_NE(a.find("cmp r5, &OR_MAX"), std::string::npos); // vs saved base
  EXPECT_NE(a.find("mov @r5, 0(r4)"), std::string::npos);  // commit input
}

// ---------------------------------------------------------------------------
// Log contents: DIALED entry block (F3)
// ---------------------------------------------------------------------------

TEST(dialed_f3, saved_sp_and_eight_args_logged_first) {
  const auto prog = build_op(trivial_op, "op", instrumentation::dialed);
  const auto r = run(prog, args(1000, 123));
  logfmt::log_view log(r.report.or_min, r.report.or_max, r.report.or_bytes);
  // Slot 0: the stack pointer at entry = stack_init - 2 (crt0's call).
  EXPECT_EQ(log.saved_sp(), prog.options.map.stack_init - 2);
  // Args: arg0 in r15 -> slot 8; arg1 in r14 -> slot 7.
  EXPECT_EQ(log.argument(0), 1000);
  EXPECT_EQ(log.argument(1), 123);
  // Unused argument registers still logged (always 8, paper §IV).
  EXPECT_EQ(log.argument(7), 0);
}

TEST(dialed_f3, log_bytes_include_nine_entry_slots) {
  const auto prog = build_op(trivial_op, "op", instrumentation::dialed);
  const auto r = run(prog, args(1, 2));
  EXPECT_GE(r.log_bytes, 9 * 2);
}

// ---------------------------------------------------------------------------
// Log contents: runtime inputs (F4) and Definition 1
// ---------------------------------------------------------------------------

TEST(dialed_f4, global_reads_are_logged_as_inputs) {
  const char* src =
      "int g = 4242;"
      "int op(int a) { return g + a; }";
  const auto dfa = build_op(src, "op", instrumentation::dialed);
  const auto cfa = build_op(src, "op", instrumentation::tinycfa);
  const auto r_dfa = run(dfa, args(1));
  const auto r_cfa = run(cfa, args(1));
  // DIALED logs 9 entry slots + the global read; Tiny-CFA logs neither.
  EXPECT_GE(r_dfa.log_bytes - r_cfa.log_bytes, 10 * 2);

  // The logged input value is the global's value, findable in the OR.
  logfmt::log_view log(r_dfa.report.or_min, r_dfa.report.or_max,
                       r_dfa.report.or_bytes);
  bool found = false;
  for (int s = 9; s < log.used_slots(static_cast<std::uint16_t>(
                          r_dfa.report.or_max - r_dfa.log_bytes));
       ++s) {
    if (log.slot(s) == 4242) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(dialed_f4, local_reads_are_not_logged) {
  // Purely local computation: I-Log must contain ONLY the 9 entry slots;
  // the rest of the log is CF entries, identical count to Tiny-CFA's.
  const char* src =
      "int op(int a) { int x = a; int y = x + 1; return x + y; }";
  const auto dfa = run(build_op(src, "op", instrumentation::dialed), args(5));
  const auto cfa = run(build_op(src, "op", instrumentation::tinycfa),
                       args(5));
  EXPECT_EQ(dfa.log_bytes, cfa.log_bytes + 9 * 2);
}

TEST(dialed_f4, pointer_read_into_stack_not_logged) {
  // Reading a LOCAL through a pointer exercises the dynamic Fig. 5 check:
  // the address is inside [r1, base], so no input entry is added.
  const char* src =
      "int op(int a) { int x = a; int *p = &x; return *p + *p; }";
  const auto dfa = run(build_op(src, "op", instrumentation::dialed), args(9));
  const auto cfa = run(build_op(src, "op", instrumentation::tinycfa),
                       args(9));
  EXPECT_EQ(dfa.report.claimed_result, 18);
  EXPECT_EQ(dfa.log_bytes, cfa.log_bytes + 9 * 2);
}

TEST(dialed_f4, pointer_read_of_global_is_logged_dynamically) {
  const char* src =
      "int g[2] = {31, 32};"
      "int op(int i) { int *p = g; return p[i]; }";
  const auto dfa = run(build_op(src, "op", instrumentation::dialed), args(1));
  const auto cfa = run(build_op(src, "op", instrumentation::tinycfa),
                       args(1));
  EXPECT_EQ(dfa.report.claimed_result, 32);
  // 9 entry slots + 1 dynamic input.
  EXPECT_EQ(dfa.log_bytes, cfa.log_bytes + 10 * 2);
}

TEST(dialed_f4, byte_reads_occupy_zero_extended_word_slot) {
  const char* src =
      "char g = 200;"
      "int op(int a) { return g; }";
  const auto prog = build_op(src, "op", instrumentation::dialed);
  const auto r = run(prog, args(0));
  EXPECT_EQ(r.report.claimed_result, 200);
  logfmt::log_view log(r.report.or_min, r.report.or_max, r.report.or_bytes);
  bool found = false;
  const int used = logfmt::log_view(r.report.or_min, r.report.or_max,
                                    r.report.or_bytes)
                       .used_slots(static_cast<std::uint16_t>(
                           r.report.or_max - r.log_bytes));
  for (int s = 9; s < used; ++s) {
    if (log.slot(s) == 200) found = true;  // high byte must be zero
  }
  EXPECT_TRUE(found);
}

TEST(dialed_f4, mmio_reads_logged_as_inputs) {
  const char* src =
      "int op(int a) {"
      "  int v = __mmio_r8(118);"  // NET_DATA
      "  __mmio_w8(118, 0);"
      "  return v;"
      "}";
  const auto prog = build_op(src, "op", instrumentation::dialed);
  proto::prover_device dev(prog, test_key());
  proto::invocation inv;
  inv.net_rx = {0x5e};
  std::array<std::uint8_t, 16> chal{};
  const auto rep = dev.invoke(chal, inv);
  EXPECT_EQ(rep.claimed_result, 0x5e);
  logfmt::log_view log(rep.or_min, rep.or_max, rep.or_bytes);
  bool found = false;
  for (int s = 9;
       s < log.used_slots(static_cast<std::uint16_t>(
               rep.or_max - dev.last_log_bytes()));
       ++s) {
    if (log.slot(s) == 0x5e) found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Ablation options
// ---------------------------------------------------------------------------

TEST(ablation, log_all_reads_inflates_ilog) {
  const char* src =
      "int op(int a) { int s = 0; int i;"
      "  for (i = 0; i < 8; i++) { s = s + i; } return s + a; }";
  pass_options all;
  all.log_all_reads = true;
  const auto lean = run(build_op(src, "op", instrumentation::dialed),
                        args(1));
  const auto fat =
      run(build_op(src, "op", instrumentation::dialed, all), args(1));
  EXPECT_EQ(lean.report.claimed_result, fat.report.claimed_result);
  EXPECT_GT(fat.log_bytes, lean.log_bytes);
}

TEST(ablation, dynamic_only_classification_costs_cycles) {
  pass_options dynamic_only;
  dynamic_only.static_read_filter = false;
  const char* src =
      "int g = 3;"
      "int op(int a) { int s = 0; int i;"
      "  for (i = 0; i < 8; i++) { s = s + g; } return s + a; }";
  const auto fast = run(build_op(src, "op", instrumentation::dialed),
                        args(1));
  const auto slow = run(
      build_op(src, "op", instrumentation::dialed, dynamic_only), args(1));
  EXPECT_EQ(fast.report.claimed_result, slow.report.claimed_result);
  EXPECT_GT(slow.op_cycles, fast.op_cycles);
  // Same inputs logged either way (the filter is a pure optimization).
  EXPECT_EQ(fast.log_bytes, slow.log_bytes);
}

TEST(ablation, optimized_cf_shrinks_cflog) {
  const char* src =
      "int leaf(int x) { return x + 1; }"
      "int op(int a) { int s = 0; int i;"
      "  for (i = 0; i < 5; i++) { s = leaf(s); } return s; }";
  pass_options opt;
  opt.optimized_cf = true;
  const auto full = run(build_op(src, "op", instrumentation::tinycfa),
                        args(0));
  const auto lean = run(
      build_op(src, "op", instrumentation::tinycfa, opt), args(0));
  EXPECT_EQ(full.report.claimed_result, lean.report.claimed_result);
  EXPECT_GT(full.log_bytes, lean.log_bytes);
}

// ---------------------------------------------------------------------------
// F5: write checks and log-overflow aborts
// ---------------------------------------------------------------------------

TEST(f5, write_into_log_region_aborts) {
  // The op writes through a pointer aimed at the OR: the instrumented
  // write check must abort before the log is corrupted.
  const char* src =
      "int op(int addr) { int *p = addr; *p = 0x5555; return 1; }";
  // note: int->pointer assignment is accepted by the mini-C sema.
  const auto prog = build_op(src, "op", instrumentation::tinycfa);
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto rep = dev.invoke(chal, args(prog.options.map.or_max));
  EXPECT_EQ(rep.halt_code, emu::HALT_ABORT);
  EXPECT_FALSE(rep.exec);
}

TEST(f5, write_below_log_region_is_allowed) {
  const char* src =
      "int g;"
      "int op(int v) { g = v; return g; }";
  const auto prog = build_op(src, "op", instrumentation::tinycfa);
  const auto r = run(prog, args(77));
  EXPECT_EQ(r.report.halt_code, emu::HALT_CLEAN);
  EXPECT_EQ(r.report.claimed_result, 77);
}

TEST(f5, log_overflow_aborts) {
  // A long loop overflows the 2 KiB OR with CF entries.
  const char* src =
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + 1; } return s; }";
  const auto prog = build_op(src, "op", instrumentation::tinycfa);
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  const auto rep = dev.invoke(chal, args(5000));
  EXPECT_EQ(rep.halt_code, emu::HALT_ABORT);
  EXPECT_FALSE(rep.exec);
}

TEST(f5, entry_with_corrupt_r4_aborts) {
  const auto prog = build_op(trivial_op, "op", instrumentation::tinycfa);
  proto::prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  proto::invocation inv = args(1, 2);
  // Patch crt0's `mov #OR_MAX, r4` to load a bogus pointer: simulate by
  // stepping to the ER entry with r4 clobbered.
  inv.on_step = [&](emu::machine& m, std::uint16_t pc) {
    if (pc == prog.er_min) {
      m.get_cpu().regs()[isa::REG_LOGPTR] = 0x1234;
    }
  };
  const auto rep = dev.invoke(chal, inv);
  EXPECT_EQ(rep.halt_code, emu::HALT_ABORT);
}

// ---------------------------------------------------------------------------
// Behavioural equivalence: instrumentation must not change results
// ---------------------------------------------------------------------------

struct equiv_case {
  const char* name;
  const char* source;
  std::uint16_t a0, a1;
};

class equivalence : public ::testing::TestWithParam<equiv_case> {};

TEST_P(equivalence, all_modes_agree_on_result) {
  const auto& c = GetParam();
  const auto r_none =
      run(build_op(c.source, "op", instrumentation::none), args(c.a0, c.a1));
  const auto r_cfa = run(build_op(c.source, "op", instrumentation::tinycfa),
                         args(c.a0, c.a1));
  const auto r_dfa = run(build_op(c.source, "op", instrumentation::dialed),
                         args(c.a0, c.a1));
  EXPECT_EQ(r_none.report.claimed_result, r_cfa.report.claimed_result);
  EXPECT_EQ(r_none.report.claimed_result, r_dfa.report.claimed_result);
  EXPECT_TRUE(r_dfa.report.exec);
}

INSTANTIATE_TEST_SUITE_P(
    programs, equivalence,
    ::testing::Values(
        equiv_case{"arith", "int op(int a, int b) { return a * b - a / b; }",
                   37, 5},
        equiv_case{"global",
                   "int acc = 100;"
                   "int op(int a, int b) { acc = acc + a; return acc - b; }",
                   11, 4},
        equiv_case{"loop",
                   "int op(int a, int b) { int s = 0; int i;"
                   "  for (i = 0; i < a; i++) { s = s + b; } return s; }",
                   9, 13},
        equiv_case{"calls",
                   "int sq(int x) { return x * x; }"
                   "int op(int a, int b) { return sq(a) + sq(b); }",
                   5, 6},
        equiv_case{"array",
                   "int t[4] = {2, 4, 6, 8};"
                   "int op(int a, int b) { return t[a] + t[b]; }",
                   1, 3}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace dialed::instr
