// Challenge-response protocol: nonce freshness, replay rejection, metering.
#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "proto/session.h"

namespace dialed::proto {
namespace {

using test::build_op;
using test::test_key;

constexpr const char* adder = "int op(int a, int b) { return a + b; }";

invocation args(std::uint16_t a0, std::uint16_t a1 = 0) {
  invocation inv;
  inv.args[0] = a0;
  inv.args[1] = a1;
  return inv;
}

TEST(session, round_trip_accepts_fresh_report) {
  const auto prog = build_op(adder, "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto chal = vrf.new_challenge();
  const auto rep = dev.invoke(chal, args(20, 22));
  const auto v = vrf.check(rep);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.replayed_result, 42);
}

TEST(session, replayed_report_rejected) {
  const auto prog = build_op(adder, "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto chal = vrf.new_challenge();
  const auto rep = dev.invoke(chal, args(1, 2));
  EXPECT_TRUE(vrf.check(rep).accepted);
  // Same report again: the nonce was consumed.
  const auto v = vrf.check(rep);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(verifier::attack_kind::stale_challenge));
}

TEST(session, old_report_for_new_challenge_rejected) {
  const auto prog = build_op(adder, "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  const auto chal1 = vrf.new_challenge();
  const auto rep1 = dev.invoke(chal1, args(1, 2));
  (void)vrf.new_challenge();  // Vrf moved on; rep1 is now stale
  const auto v = vrf.check(rep1);
  EXPECT_FALSE(v.accepted);
  EXPECT_TRUE(v.has(verifier::attack_kind::stale_challenge));
}

TEST(session, challenges_are_distinct) {
  const auto prog = build_op(adder, "op", instr::instrumentation::dialed);
  verifier_session vrf(prog, test_key());
  const auto c1 = vrf.new_challenge();
  const auto c2 = vrf.new_challenge();
  EXPECT_NE(c1, c2);
}

TEST(session, deterministic_under_seed) {
  const auto prog = build_op(adder, "op", instr::instrumentation::dialed);
  verifier_session a(prog, test_key(), 42);
  verifier_session b(prog, test_key(), 42);
  EXPECT_EQ(a.new_challenge(), b.new_challenge());
}

TEST(session, submit_frame_speaks_every_wire_version) {
  // The v1 adapter's typed frame surface: v1 frames route to the session
  // device seq-unchecked, v2.1 delta frames verify against the hub's
  // baseline, and the rich result drives the fallback negotiation.
  const auto prog = build_op(adder, "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());

  // v1 frame (no identity, no seq) — accepted for the session device.
  const auto c1 = vrf.new_challenge();
  const auto rep1 = dev.invoke(c1, args(20, 22));
  const auto r1 = vrf.submit_frame(encode_report(rep1));
  ASSERT_TRUE(r1.accepted());
  EXPECT_EQ(r1.verdict.replayed_result, 42);

  // v2.1 delta frame against the just-accepted baseline.
  const auto c2 = vrf.new_challenge();
  const auto rep2 = dev.invoke(c2, args(7, 8));
  delta_emitter emitter;
  emitter.note_result(vrf.id(), r1.seq, rep1, proto_error::none, true);
  const auto frame2 = emitter.encode(vrf.id(), r1.seq + 1, rep2);
  ASSERT_EQ(frame2[2], wire_v21);
  const auto r2 = vrf.submit_frame(frame2);
  ASSERT_TRUE(r2.accepted());
  EXPECT_EQ(r2.verdict.replayed_result, 15);

  // A desynced delta is the typed error, not a swallowed v1 finding —
  // and the challenge survives for the full-frame retry.
  const auto c3 = vrf.new_challenge();
  const auto rep3 = dev.invoke(c3, args(1, 1));
  const auto bogus = encode_delta_frame(
      frame_info{.version = wire_v21, .device_id = vrf.id(),
                 .seq = r2.seq + 1},
      rep3, 424242, byte_vec(32, 0x9e));
  const auto r3 = vrf.submit_frame(bogus);
  EXPECT_EQ(r3.error, proto_error::baseline_mismatch);
  const auto r4 = vrf.submit_frame(encode_frame(
      frame_info{.device_id = vrf.id(), .seq = r2.seq + 1}, rep3));
  ASSERT_TRUE(r4.accepted());
  EXPECT_EQ(r4.verdict.replayed_result, 2);

  // Damaged frames come back as typed transport errors.
  auto torn = encode_report(rep3);
  torn.resize(torn.size() / 2);
  EXPECT_EQ(vrf.submit_frame(torn).error, proto_error::bad_length);
}

TEST(metering, op_cycles_exclude_startup_and_swatt) {
  const auto prog = build_op(adder, "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  dev.invoke(chal, args(1, 2));
  EXPECT_GT(dev.last_op_cycles(), 0u);
  EXPECT_LT(dev.last_op_cycles(), dev.last_total_cycles());
  // SW-Att alone costs far more than this trivial op.
  EXPECT_LT(dev.last_op_cycles(), dev.last_total_cycles() / 10);
}

TEST(metering, log_bytes_zero_for_uninstrumented_op) {
  const auto prog = build_op(adder, "op", instr::instrumentation::none);
  prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  dev.invoke(chal, args(1, 2));
  EXPECT_EQ(dev.last_log_bytes(), 0);
}

TEST(metering, runtime_scales_with_workload) {
  const auto prog = build_op(
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + i; } return s; }",
      "op", instr::instrumentation::none);
  prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  dev.invoke(chal, args(5));
  const auto small = dev.last_op_cycles();
  dev.invoke(chal, args(50));
  const auto large = dev.last_op_cycles();
  EXPECT_GT(large, small * 5);
}

TEST(metering, log_grows_with_control_flow) {
  const auto prog = build_op(
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + i; } return s; }",
      "op", instr::instrumentation::tinycfa);
  prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  dev.invoke(chal, args(2));
  const auto small = dev.last_log_bytes();
  dev.invoke(chal, args(20));
  const auto large = dev.last_log_bytes();
  EXPECT_GT(large, small);
}

TEST(device, consecutive_invocations_are_independent) {
  const auto prog = build_op(
      "int acc = 0;"
      "int op(int a) { acc = acc + a; return acc; }",
      "op", instr::instrumentation::dialed);
  prover_device dev(prog, test_key());
  verifier_session vrf(prog, test_key());
  // Globals are re-initialized by crt0 on every boot: acc restarts at 0.
  for (int round = 0; round < 3; ++round) {
    const auto chal = vrf.new_challenge();
    const auto rep = dev.invoke(chal, args(10));
    const auto v = vrf.check(rep);
    EXPECT_TRUE(v.accepted) << "round " << round;
    EXPECT_EQ(v.replayed_result, 10);
  }
}

TEST(device, cycle_budget_exhaustion_throws) {
  const auto prog = build_op(
      "int op(int n) { while (1) { n = n + 1; } return n; }", "op",
      instr::instrumentation::none);
  prover_device dev(prog, test_key());
  std::array<std::uint8_t, 16> chal{};
  invocation inv;
  inv.max_cycles = 100'000;
  EXPECT_THROW(dev.invoke(chal, inv), error);
}

}  // namespace
}  // namespace dialed::proto
