// dialed-attest: run one attested invocation of a mini-C operation on the
// emulated device and verify the report — the full fleet protocol from the
// command line. The operation's device is provisioned into a one-entry
// fleet registry (per-device key derived from a master key), attested via
// the verifier hub, and the report travels as a wire v2 frame.
//
//   dialed-attest <source.c> [--entry op] [--device-id N] [--args a,b,...]
//                 [--net b,b,...] [--adc s,s,...] [--repeat K]
//                 [--workers N] [--delta] [--state-dir DIR]
//                 [--stats-json PATH] [--hex-frame] [--trace]
//                 [--connect HOST:PORT [--timeout-ms MS] [--scrape]]
//
// --repeat K runs K attested invocations (K challenges outstanding at
// once, K wire frames) and verifies them as one batch; --workers N fans
// the batch out over N hub worker threads (default 0 = strictly
// sequential) — the shared-firmware-artifact batch path, exercisable from
// the command line.
//
// --delta switches the transport to the wire v2.1 polling loop: rounds
// run strictly sequentially through a proto::delta_emitter, so every
// round after the first ships a sparse OR delta against the last
// ACCEPTED report (with the full-frame fallback when the hub answers
// baseline_mismatch), and the per-round/total byte savings are printed.
// Combined with --state-dir the hub's baseline survives across runs —
// the first round of a SECOND process run is full (the emitter's mirror
// is per process) but re-syncs the lockstep immediately.
//
// --state-dir DIR opens (or initializes) a durable fleet store there and
// resumes it: the device registry, firmware catalog, anti-replay history
// and stats counters survive across invocations, so a second run reuses
// the provisioned device and a captured frame from a previous run is
// rejected as a replay. The demo master key is fixed (0xAB * 32) — real
// deployments must supply their own.
//
// --stats-json PATH writes the hub's counters (including the per-device
// accept/reject/replay breakdown) as JSON on exit — the minimal
// exportable metrics endpoint.
//
// Exit code 0 = every report verified, 1 = any rejected, 2 = usage error.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "crypto/sha256.h"
#include "fleet/stats_render.h"
#include "fleet/verifier_hub.h"
#include "net/client.h"
#include "proto/prover.h"
#include "proto/wire.h"
#include "store/fleet_store.h"
#include "verifier/firmware_artifact.h"

namespace {

// Throws dialed::error on malformed or out-of-range numbers so main can
// report a usage error (exit 2) instead of dying on an uncaught
// std::invalid_argument from std::stoul. `max` is the flag's value range
// (16-bit args/ADC samples, 8-bit net bytes, 32-bit device ids) so
// oversized values fail loudly instead of silently truncating at the
// use site.
std::vector<std::uint32_t> parse_list(const std::string& s,
                                      std::uint32_t max = 0xffffffffu) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      // stoul happily parses negatives (wrapping them into unsigned
      // long) and values beyond 32 bits; reject both explicitly.
      if (!item.empty() && item[0] == '-') {
        throw dialed::error("negative value: " + item);
      }
      std::size_t used = 0;
      const unsigned long v = std::stoul(item, &used, 0);
      if (used != item.size()) {
        throw dialed::error("trailing junk in number: " + item);
      }
      if (v > max) {
        throw dialed::error("value out of range (max " +
                            std::to_string(max) + "): " + item);
      }
      out.push_back(static_cast<std::uint32_t>(v));
    } catch (const dialed::error&) {
      throw;
    } catch (const std::exception&) {
      throw dialed::error("not a number: '" + item + "'");
    }
  }
  return out;
}

void usage() {
  std::fprintf(stderr,
               "usage: dialed-attest <source.c> [--entry NAME] "
               "[--device-id N] [--args a,b,...] [--net b,b,...] "
               "[--adc s,s,...] [--repeat K] [--workers N] [--delta] "
               "[--state-dir DIR] [--stats-json PATH] "
               "[--connect HOST:PORT] [--timeout-ms MS] [--scrape] "
               "[--hex-frame] [--trace]\n");
}

/// "HOST:PORT" for --connect. Throws dialed::error on anything else.
std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    throw dialed::error("--connect needs HOST:PORT, got '" + s + "'");
  }
  const auto port = parse_list(s.substr(colon + 1), 0xffff);
  if (port.size() != 1 || port[0] == 0) {
    throw dialed::error("--connect needs a nonzero port in '" + s + "'");
  }
  return {s.substr(0, colon), static_cast<std::uint16_t>(port[0])};
}

/// Hub counters (with the per-device breakdown) as a JSON document — the
/// "exportable metrics endpoint" in its minimal, file-shaped form. The
/// rendering itself lives in fleet/stats_render so this file export and
/// dialed-serve's /metrics can never drift apart.
void write_stats_json(const dialed::fleet::hub_stats& s,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw dialed::error("cannot write stats json: " + path);
  }
  out << dialed::fleet::render_stats_json(s);
}

/// --connect mode: the same attested rounds, but the verifier hub lives
/// in a dialed-serve process across a socket. The device key is derived
/// locally from the shared demo master key (the HMAC KDF needs no
/// provisioning round-trip); rounds run sequentially so --delta keeps its
/// lockstep, with the full-frame fallback on the SAME challenge when the
/// server answers baseline_mismatch (the nonce survives by design).
int run_connected(const std::string& host, std::uint16_t port,
                  const dialed::instr::linked_program& prog,
                  const dialed::proto::invocation& inv,
                  dialed::fleet::device_id device_id, std::uint32_t repeat,
                  bool delta, bool hex_frame, bool scrape,
                  int timeout_ms) {
  using namespace dialed;
  const byte_vec demo_master_key(32, 0xAB);
  const fleet::device_registry key_source(demo_master_key);
  proto::prover_device dev(prog, key_source.derive_key(device_id));
  net::attest_client client(host, port, timeout_ms);

  std::size_t accepted = 0;
  proto::delta_emitter emitter;
  for (std::uint32_t k = 0; k < repeat; ++k) {
    const auto grant = client.get_challenge(device_id);
    if (grant.error != proto::proto_error::none) {
      std::fprintf(stderr, "dialed-attest: challenge refused: %s\n",
                   proto::to_string(grant.error).c_str());
      return 1;
    }
    const auto rep = dev.invoke(grant.nonce, inv);
    byte_vec frame;
    if (delta) {
      frame = emitter.encode(device_id, grant.seq, rep);
    } else {
      proto::frame_info info;
      info.device_id = device_id;
      info.seq = grant.seq;
      frame = proto::encode_frame(info, rep);
    }
    if (hex_frame && k == 0) {
      std::printf("frame (%zu bytes): %s\n", frame.size(),
                  to_hex(frame).c_str());
    }
    auto res = client.submit_report(frame);
    if (delta && res.error == proto::proto_error::baseline_mismatch) {
      // Delta desync (e.g. the server restarted without our baseline):
      // fall back to a full frame on the same still-alive nonce.
      emitter.note_result(device_id, grant.seq, rep, res.error, false);
      frame = emitter.encode(device_id, grant.seq, rep);  // now full
      res = client.submit_report(frame);
    }
    if (delta) {
      emitter.note_result(device_id, grant.seq, rep, res.error,
                          res.accepted);
    }
    if (res.accepted) {
      ++accepted;
    } else {
      std::fprintf(stderr, "dialed-attest: round %u: %s\n", k,
                   res.error != proto::proto_error::none
                       ? proto::to_string(res.error).c_str()
                       : "REJECTED");
    }
    if (k == 0 || k + 1 == repeat) {
      std::printf("round %u:  seq=%u frame=%zuB (%s) -> %s\n", k,
                  grant.seq, frame.size(),
                  frame.size() > 2 && frame[2] == proto::wire_v21
                      ? "wire v2.1 delta"
                      : "wire v2 full",
                  res.accepted ? "ACCEPTED" : "rejected");
    }
  }
  if (delta) {
    const auto& es = emitter.transport_stats();
    std::printf(
        "wire:     %llu frames (%llu delta), %llu B emitted vs %llu B "
        "as full v2 (%.1fx smaller)\n",
        static_cast<unsigned long long>(es.frames),
        static_cast<unsigned long long>(es.delta_frames),
        static_cast<unsigned long long>(es.wire_bytes),
        static_cast<unsigned long long>(es.full_bytes),
        es.wire_bytes != 0 ? static_cast<double>(es.full_bytes) /
                                 static_cast<double>(es.wire_bytes)
                           : 0.0);
  }
  std::printf("remote:   %zu/%u reports accepted by %s:%u\n", accepted,
              repeat, host.c_str(), port);
  if (scrape) {
    std::printf("---- GET /healthz ----\n%s",
                net::http_get(host, port, "/healthz", timeout_ms).c_str());
    std::printf("---- GET /metrics ----\n%s",
                net::http_get(host, port, "/metrics", timeout_ms).c_str());
  }
  return accepted == repeat ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dialed;
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string path;
  std::string entry = "op";
  std::string state_dir;
  std::string stats_json;
  std::string connect;
  proto::invocation inv;
  fleet::device_id device_id = 1;
  std::uint32_t repeat = 1;
  std::uint32_t workers = 0;
  std::uint32_t timeout_ms = 5000;
  bool delta = false, hex_frame = false, trace = false, scrape = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--entry" && i + 1 < argc) {
        entry = argv[++i];
      } else if (arg == "--device-id" && i + 1 < argc) {
        const auto vals = parse_list(argv[++i]);
        if (vals.size() != 1 || vals[0] == 0) {
          throw error("--device-id needs one nonzero id");
        }
        device_id = vals[0];
      } else if (arg == "--args" && i + 1 < argc) {
        const auto vals = parse_list(argv[++i], 0xffff);
        for (std::size_t k = 0; k < vals.size() && k < 8; ++k) {
          inv.args[k] = static_cast<std::uint16_t>(vals[k]);
        }
      } else if (arg == "--net" && i + 1 < argc) {
        for (const auto v : parse_list(argv[++i], 0xff)) {
          inv.net_rx.push_back(static_cast<std::uint8_t>(v));
        }
      } else if (arg == "--adc" && i + 1 < argc) {
        for (const auto v : parse_list(argv[++i], 0xffff)) {
          inv.adc_samples.push_back(static_cast<std::uint16_t>(v));
        }
      } else if (arg == "--repeat" && i + 1 < argc) {
        const auto vals = parse_list(argv[++i], 100000);
        if (vals.size() != 1 || vals[0] == 0) {
          throw error("--repeat needs one nonzero count");
        }
        repeat = vals[0];
      } else if (arg == "--workers" && i + 1 < argc) {
        const auto vals = parse_list(argv[++i], 1024);
        if (vals.size() != 1) {
          throw error("--workers needs one value");
        }
        workers = vals[0];
      } else if (arg == "--delta") {
        delta = true;
      } else if (arg == "--state-dir" && i + 1 < argc) {
        state_dir = argv[++i];
      } else if (arg == "--stats-json" && i + 1 < argc) {
        stats_json = argv[++i];
      } else if (arg == "--connect" && i + 1 < argc) {
        connect = argv[++i];
      } else if (arg == "--timeout-ms" && i + 1 < argc) {
        const auto vals = parse_list(argv[++i], 3600000);
        if (vals.size() != 1) throw error("--timeout-ms needs one value");
        timeout_ms = vals[0];
      } else if (arg == "--scrape") {
        scrape = true;
      } else if (arg == "--hex-frame") {
        hex_frame = true;
      } else if (arg == "--trace") {
        trace = true;
      } else if (!arg.empty() && arg[0] == '-') {
        usage();
        return 2;
      } else {
        path = arg;
      }
    }
  } catch (const error& e) {
    std::fprintf(stderr, "dialed-attest: %s\n", e.what());
    usage();
    return 2;
  }
  if (path.empty()) {
    usage();
    return 2;
  }
  if (delta && workers != 0) {
    std::fprintf(stderr,
                 "dialed-attest: --delta is a sequential polling loop "
                 "(each round's baseline is the previous accepted "
                 "round); drop --workers\n");
    return 2;
  }
  if (!connect.empty() &&
      (!state_dir.empty() || !stats_json.empty() || workers != 0)) {
    std::fprintf(stderr,
                 "dialed-attest: --state-dir/--stats-json/--workers are "
                 "server-side in --connect mode (run dialed-serve with "
                 "them)\n");
    return 2;
  }
  if (scrape && connect.empty()) {
    std::fprintf(stderr, "dialed-attest: --scrape needs --connect\n");
    return 2;
  }
  std::pair<std::string, std::uint16_t> remote;
  if (!connect.empty()) {
    try {
      remote = parse_host_port(connect);
    } catch (const error& e) {
      std::fprintf(stderr, "dialed-attest: %s\n", e.what());
      return 2;  // a bad HOST:PORT is a usage error, not a runtime one
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dialed-attest: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  try {
    instr::link_options lo;
    lo.entry = entry;
    lo.mode = instr::instrumentation::dialed;
    const auto prog = instr::build_operation(ss.str(), lo);

    if (!connect.empty()) {
      return run_connected(remote.first, remote.second, prog, inv,
                           device_id, repeat, delta, hex_frame, scrape,
                           static_cast<int>(timeout_ms));
    }

    fleet::hub_config hub_cfg;
    hub_cfg.max_outstanding = repeat;  // all K challenges live at once
    if (workers == 0) {
      // Strictly sequential: no point spinning up the hub's batch worker
      // pool for a plain CLI invocation.
      hub_cfg.shards = 1;
      hub_cfg.sequential_batch = true;
    } else {
      hub_cfg.workers = workers;
    }

    // Fleet-side provisioning: the hub holds only the master key; the
    // device is burned with the derived K_dev. The registry interns the
    // program into its firmware catalog — the shared-artifact path every
    // batch report verifies on. With --state-dir, registry/catalog/hub
    // are resumed from (and journaled to) the durable store instead of
    // built fresh.
    const byte_vec demo_master_key(32, 0xAB);
    std::optional<fleet::device_registry> local_registry;
    store::fleet_state persisted;
    if (state_dir.empty()) {
      local_registry.emplace(demo_master_key);
    } else {
      store::fleet_store::options so;
      so.master_key = demo_master_key;
      so.hub = hub_cfg;
      persisted = store::fleet_store::open(state_dir, so);
    }
    fleet::device_registry& registry =
        local_registry ? *local_registry : *persisted.registry;

    if (const auto* rec = registry.find(device_id)) {
      // Resumed device: the firmware on disk must be the firmware we are
      // about to run, or every MAC would fail inscrutably.
      if (rec->firmware->id() !=
          verifier::firmware_artifact::fingerprint(prog)) {
        std::fprintf(stderr,
                     "dialed-attest: device %u is provisioned with a "
                     "different firmware (%.16s...) in %s\n",
                     device_id, rec->firmware->id_hex().c_str(),
                     state_dir.c_str());
        return 2;
      }
    } else {
      registry.provision(device_id, prog);
    }

    std::optional<fleet::verifier_hub> local_hub;
    if (local_registry) local_hub.emplace(registry, hub_cfg);
    fleet::verifier_hub& hub = local_hub ? *local_hub : *persisted.hub;
    if (!state_dir.empty()) {
      std::printf("state:    %s (generation %llu, %llu WAL records)\n",
                  state_dir.c_str(),
                  static_cast<unsigned long long>(
                      persisted.store->generation()),
                  static_cast<unsigned long long>(
                      persisted.store->wal_records()));
    }
    proto::prover_device dev(prog, registry.find(device_id)->key);

    std::vector<fleet::attest_result> results;
    // Wall time spent verifying (the --repeat reports/s figure): the
    // batch path times verify_batch alone; the delta path is strictly
    // sequential rounds, so the whole invoke+encode+submit loop is timed
    // and the figure is end-to-end round throughput.
    double verify_seconds = 0.0;
    if (delta) {
      // The wire v2.1 polling loop: strictly sequential rounds through a
      // delta emitter, every accepted round becoming the next round's
      // baseline; a baseline_mismatch answer (e.g. first run against a
      // resumed --state-dir hub) falls back to a full frame on the SAME
      // challenge.
      proto::delta_emitter emitter;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint32_t k = 0; k < repeat; ++k) {
        const auto grant = hub.challenge(device_id);
        const auto rep = dev.invoke(grant.nonce, inv);
        byte_vec frame = emitter.encode(device_id, grant.seq, rep);
        auto res = hub.submit(frame);
        if (res.error == proto::proto_error::baseline_mismatch) {
          emitter.note_result(device_id, grant.seq, rep, res.error, false);
          frame = emitter.encode(device_id, grant.seq, rep);  // now full
          res = hub.submit(frame);
        }
        emitter.note_result(device_id, grant.seq, rep, res.error,
                            res.accepted());
        results.push_back(res);
        if (k == 0 || k + 1 == repeat) {
          std::printf(
              "device:   id=%u result=%u, EXEC=%d, op=%llu cycles, "
              "log=%dB, frame=%zuB (wire %s, seq %u)\n",
              device_id, rep.claimed_result, rep.exec ? 1 : 0,
              static_cast<unsigned long long>(dev.last_op_cycles()),
              dev.last_log_bytes(), frame.size(),
              frame.size() > 2 && frame[2] == proto::wire_v21
                  ? "v2.1 delta"
                  : "v2 full",
              grant.seq);
        }
        if (hex_frame && k == 0) {
          std::printf("frame (%zu bytes): %s\n", frame.size(),
                      to_hex(frame).c_str());
        }
      }
      verify_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      const auto& es = emitter.transport_stats();
      std::printf(
          "wire:     %llu frames (%llu delta), %llu B emitted vs %llu B "
          "as full v2 (%.1fx smaller)\n",
          static_cast<unsigned long long>(es.frames),
          static_cast<unsigned long long>(es.delta_frames),
          static_cast<unsigned long long>(es.wire_bytes),
          static_cast<unsigned long long>(es.full_bytes),
          es.wire_bytes != 0 ? static_cast<double>(es.full_bytes) /
                                   static_cast<double>(es.wire_bytes)
                             : 0.0);
    } else {
      // Run one attested invocation per challenge and ship each report
      // through the wire format, as a real deployment would
      // (max_outstanding keeps all K challenges live at once).
      std::vector<byte_vec> frames;
      for (std::uint32_t k = 0; k < repeat; ++k) {
        const auto grant = hub.challenge(device_id);
        const auto rep = dev.invoke(grant.nonce, inv);
        proto::frame_info info;
        info.device_id = device_id;
        info.seq = grant.seq;
        frames.push_back(proto::encode_frame(info, rep));
        if (k == 0) {
          std::printf("device:   id=%u result=%u, EXEC=%d, op=%llu cycles, "
                      "log=%dB, frame=%zuB (wire v2, seq %u)\n",
                      device_id, rep.claimed_result, rep.exec ? 1 : 0,
                      static_cast<unsigned long long>(dev.last_op_cycles()),
                      dev.last_log_bytes(), frames.back().size(), grant.seq);
          if (hex_frame) {
            std::printf("frame (%zu bytes): %s\n", frames.back().size(),
                        to_hex(frames.back()).c_str());
          }
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      results = hub.verify_batch(frames);
      verify_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
    }
    std::size_t accepted = 0;
    for (const auto& r : results) {
      if (r.accepted()) ++accepted;
    }

    // Report the first result in detail (the single-invocation contract),
    // then the batch summary when --repeat was given.
    const auto& first = results.front();
    if (first.error != proto::proto_error::none) {
      std::fprintf(stderr, "dialed-attest: protocol error: %s\n",
                   proto::to_string(first.error).c_str());
    } else {
      const auto& v = first.verdict;
      std::printf("verifier: %s (replayed result %u, %llu instructions)\n",
                  v.accepted ? "ACCEPTED" : "REJECTED", v.replayed_result,
                  static_cast<unsigned long long>(v.replay_instructions));
      for (const auto& f : v.findings) {
        std::printf("  %-20s %s\n", verifier::to_string(f.kind).c_str(),
                    f.detail.c_str());
      }
      if (trace) {
        std::printf("peripheral writes (replayed, with provenance):\n");
        for (const auto& e : v.io_trace) {
          std::printf("  pc=0x%04x [0x%04x] <- 0x%04x %s\n", e.pc, e.addr,
                      e.value,
                      e.tainted ? "(input-derived)" : "(constant)");
        }
      }
    }
    if (repeat > 1) {
      // Diagnostics for every rejected report beyond the detailed first
      // one — a failing batch must name which report failed and why.
      for (std::size_t i = 1; i < results.size(); ++i) {
        const auto& r = results[i];
        if (r.accepted()) continue;
        if (r.error != proto::proto_error::none) {
          std::fprintf(stderr,
                       "dialed-attest: report %zu: protocol error: %s\n",
                       i, proto::to_string(r.error).c_str());
          continue;
        }
        std::fprintf(stderr, "dialed-attest: report %zu: REJECTED\n", i);
        for (const auto& f : r.verdict.findings) {
          std::fprintf(stderr, "  %-20s %s\n",
                       verifier::to_string(f.kind).c_str(),
                       f.detail.c_str());
        }
      }
      const auto stats = hub.stats();
      std::printf("batch:    %zu/%zu reports accepted (%zu worker "
                  "thread(s) + caller, firmware %.16s...)\n",
                  accepted, results.size(), hub.batch_workers(),
                  registry.find(device_id)->firmware->id_hex().c_str());
      if (verify_seconds > 0.0) {
        std::printf("rate:     %.0f reports/s (%zu reports in %.3fs, "
                    "SHA-256 backend %s)\n",
                    static_cast<double>(results.size()) / verify_seconds,
                    results.size(), verify_seconds,
                    crypto::to_string(crypto::sha256_active_backend()));
      }
      std::printf("hub:      issued=%llu accepted=%llu rejected=%llu\n",
                  static_cast<unsigned long long>(stats.challenges_issued),
                  static_cast<unsigned long long>(stats.reports_accepted),
                  static_cast<unsigned long long>(
                      stats.reports_submitted() - stats.reports_accepted));
    }
    if (!stats_json.empty()) {
      write_stats_json(hub.stats(), stats_json);
    }
    return accepted == results.size() ? 0 : 1;
  } catch (const error& e) {
    std::fprintf(stderr, "dialed-attest: %s\n", e.what());
    return 1;
  }
}
