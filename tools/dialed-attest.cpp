// dialed-attest: run one attested invocation of a mini-C operation on the
// emulated device and verify the report — the full protocol from the
// command line.
//
//   dialed-attest <source.c> [--entry op] [--args a,b,...] [--net b,b,...]
//                 [--adc s,s,...] [--hex-frame] [--trace]
//
// Exit code 0 = verified, 1 = rejected, 2 = usage error.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "proto/prover.h"
#include "proto/session.h"
#include "proto/wire.h"

namespace {

std::vector<std::uint32_t> parse_list(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<std::uint32_t>(std::stoul(item, nullptr, 0)));
  }
  return out;
}

void usage() {
  std::fprintf(stderr,
               "usage: dialed-attest <source.c> [--entry NAME] "
               "[--args a,b,...] [--net b,b,...] [--adc s,s,...] "
               "[--hex-frame] [--trace]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dialed;
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string path;
  std::string entry = "op";
  proto::invocation inv;
  bool hex_frame = false, trace = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--entry" && i + 1 < argc) {
      entry = argv[++i];
    } else if (arg == "--args" && i + 1 < argc) {
      const auto vals = parse_list(argv[++i]);
      for (std::size_t k = 0; k < vals.size() && k < 8; ++k) {
        inv.args[k] = static_cast<std::uint16_t>(vals[k]);
      }
    } else if (arg == "--net" && i + 1 < argc) {
      for (const auto v : parse_list(argv[++i])) {
        inv.net_rx.push_back(static_cast<std::uint8_t>(v));
      }
    } else if (arg == "--adc" && i + 1 < argc) {
      for (const auto v : parse_list(argv[++i])) {
        inv.adc_samples.push_back(static_cast<std::uint16_t>(v));
      }
    } else if (arg == "--hex-frame") {
      hex_frame = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dialed-attest: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  try {
    instr::link_options lo;
    lo.entry = entry;
    lo.mode = instr::instrumentation::dialed;
    const auto prog = instr::build_operation(ss.str(), lo);

    const byte_vec key(32, 0xAB);
    proto::prover_device dev(prog, key);
    proto::verifier_session vrf(prog, key);

    const auto chal = vrf.new_challenge();
    const auto rep = dev.invoke(chal, inv);
    // Ship the report through the wire format, as a real deployment would.
    const auto frame = proto::encode_report(rep);
    if (hex_frame) {
      std::printf("frame (%zu bytes): %s\n", frame.size(),
                  to_hex(frame).c_str());
    }
    const auto parsed = proto::decode_report(frame);
    if (!parsed) {
      std::fprintf(stderr, "dialed-attest: frame corrupted in transit\n");
      return 1;
    }
    const auto v = vrf.check(*parsed);

    std::printf("device:   result=%u, EXEC=%d, op=%llu cycles, log=%dB, "
                "frame=%zuB\n",
                rep.claimed_result, rep.exec ? 1 : 0,
                static_cast<unsigned long long>(dev.last_op_cycles()),
                dev.last_log_bytes(), frame.size());
    std::printf("verifier: %s (replayed result %u, %llu instructions)\n",
                v.accepted ? "ACCEPTED" : "REJECTED", v.replayed_result,
                static_cast<unsigned long long>(v.replay_instructions));
    for (const auto& f : v.findings) {
      std::printf("  %-20s %s\n", verifier::to_string(f.kind).c_str(),
                  f.detail.c_str());
    }
    if (trace) {
      std::printf("peripheral writes (replayed, with provenance):\n");
      for (const auto& e : v.io_trace) {
        std::printf("  pc=0x%04x [0x%04x] <- 0x%04x %s\n", e.pc, e.addr,
                    e.value, e.tainted ? "(input-derived)" : "(constant)");
      }
    }
    return v.accepted ? 0 : 1;
  } catch (const error& e) {
    std::fprintf(stderr, "dialed-attest: %s\n", e.what());
    return 1;
  }
}
