// dialed-build: command-line front end of the toolchain.
//
//   dialed-build <source.c> [--entry op] [--mode none|tinycfa|dialed]
//                [--asm] [--disasm] [--sites] [--optimized-cf] [--log-all]
//
// Compiles a mini-C translation unit, instruments and links it, and prints
// the layout summary (plus optional listings) — what a firmware engineer
// would run before flashing a device.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "instr/oplink.h"
#include "masm/disasm.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: dialed-build <source.c> [--entry NAME] "
               "[--mode none|tinycfa|dialed] [--asm] [--disasm] [--sites] "
               "[--optimized-cf] [--log-all]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dialed;
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string path;
  instr::link_options lo;
  lo.entry = "op";
  lo.mode = instr::instrumentation::dialed;
  bool show_asm = false, show_disasm = false, show_sites = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--entry" && i + 1 < argc) {
      lo.entry = argv[++i];
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "none") lo.mode = instr::instrumentation::none;
      else if (m == "tinycfa") lo.mode = instr::instrumentation::tinycfa;
      else if (m == "dialed") lo.mode = instr::instrumentation::dialed;
      else { usage(); return 2; }
    } else if (arg == "--asm") {
      show_asm = true;
    } else if (arg == "--disasm") {
      show_disasm = true;
    } else if (arg == "--sites") {
      show_sites = true;
    } else if (arg == "--optimized-cf") {
      lo.pass_opts.optimized_cf = true;
    } else if (arg == "--log-all") {
      lo.pass_opts.log_all_reads = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dialed-build: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  try {
    const auto prog = instr::build_operation(ss.str(), lo);
    std::printf("entry:      %s (%s)\n", lo.entry.c_str(),
                to_string(lo.mode).c_str());
    std::printf("ER:         [0x%04x, 0x%04x], %zu bytes\n", prog.er_min,
                prog.er_max, prog.code_size());
    std::printf("OR:         [0x%04x, 0x%04x]\n", prog.options.map.or_min,
                prog.options.map.or_max);
    std::printf("image:      %zu bytes across %zu segments\n",
                prog.image.total_bytes(), prog.image.segments.size());
    std::printf("globals:\n");
    for (const auto& [name, addr] : prog.global_addrs) {
      std::printf("  0x%04x  %s\n", addr, name.c_str());
    }
    if (show_sites) {
      std::printf("access sites (bounds metadata for Vrf):\n");
      for (const auto& s : prog.compile_info.access_sites) {
        std::printf("  %-16s %-10s %s, %d bytes\n", s.label.c_str(),
                    s.object.c_str(), s.is_global ? "global" : "local",
                    s.size_bytes);
      }
    }
    if (show_asm) {
      std::printf("---- instrumented ER assembly ----\n%s",
                  prog.er_asm_text.c_str());
    }
    if (show_disasm) {
      std::printf("---- ER disassembly ----\n");
      for (const auto& e :
           masm::disassemble(prog.er_bytes(), prog.er_min)) {
        std::printf("  0x%04x  %s\n", e.address, e.text.c_str());
      }
    }
    return 0;
  } catch (const error& e) {
    std::fprintf(stderr, "dialed-build: %s\n", e.what());
    return 1;
  }
}
