// dialed-serve: the DIALED attestation service. Builds the operation from
// mini-C source, provisions a fleet of devices for it, and serves the
// challenge/report protocol over TCP (length-prefixed frames) and UDP
// (fire-and-forget datagrams) from one epoll reactor thread, with
// adaptive verify batching and live Prometheus metrics on the same port:
//
//   dialed-serve <source.c> [--entry NAME] [--devices N] [--bind ADDR]
//                [--port P] [--udp-port P] [--no-udp]
//                [--batch-max N] [--batch-latency-ms MS] [--workers N]
//                [--max-outstanding N] [--max-pending N]
//                [--idle-timeout-ms MS] [--state-dir DIR]
//                [--standby-dir DIR]
//                [--partitions N] [--wal-sync per_record|group|none]
//                [--log-level trace|debug|info|warn|error|off]
//                [--log-json]
//
// Devices 1..N are provisioned from the fleet demo master key (0xAB*32 —
// real deployments must supply their own), so any dialed-attest --connect
// client that derives K_dev from the same key can attest. With
// --state-dir the registry/catalog/hub are resumed from (and journaled
// to) a durable fleet store: a report accepted before a crash is
// rejected as a replay after the restart.
//
// --partitions N shards the fleet across N hubs behind a consistent-hash
// router (src/fleet/partition.h): each device id lives on exactly one
// partition, /metrics grows per-partition dialed_partition_* families,
// and with --state-dir each partition journals to its own store under
// DIR/p0..p<N-1> (the placement manifest refuses a restart with a
// different N). The wire protocol is unchanged — clients cannot tell a
// partitioned service from a single hub.
//
// Prints "listening: tcp=PORT udp=PORT" once serving (PORT resolves
// --port 0 to the kernel's pick, for scripts and tests). SIGINT/SIGTERM
// shut down cleanly: the handler only calls the async-signal-safe
// request_stop().
//
// Observability on the TCP port: GET /metrics (Prometheus text, incl.
// per-stage latency histograms and build info), GET /healthz (hub +
// per-partition store/standby health JSON; 503 once a standby desyncs),
// GET /debug/traces (flight-recorder dump). --log-level turns on the
// structured event log to stderr (logfmt, or JSON with --log-json).
// --standby-dir DIR keeps a warm standby of each partition's store under
// DIR/p<i> by WAL shipping; its lag and desync state surface on both
// endpoints.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "fleet/partition.h"
#include "net/server.h"
#include "obs/event_log.h"
#include "store/ship.h"
#include "verifier/firmware_artifact.h"

namespace {

dialed::net::attest_server* g_server = nullptr;

extern "C" void handle_signal(int) {
  // Async-signal-safe: an atomic store plus an eventfd write(2).
  if (g_server != nullptr) g_server->request_stop();
}

std::uint32_t parse_u32(const std::string& s, std::uint32_t max) {
  try {
    if (!s.empty() && s[0] == '-') throw dialed::error("negative: " + s);
    std::size_t used = 0;
    const unsigned long v = std::stoul(s, &used, 0);
    if (used != s.size() || v > max) {
      throw dialed::error("value out of range: " + s);
    }
    return static_cast<std::uint32_t>(v);
  } catch (const dialed::error&) {
    throw;
  } catch (const std::exception&) {
    throw dialed::error("not a number: '" + s + "'");
  }
}

void usage() {
  std::fprintf(
      stderr,
      "usage: dialed-serve <source.c> [--entry NAME] [--devices N] "
      "[--bind ADDR] [--port P] [--udp-port P] [--no-udp] "
      "[--batch-max N] [--batch-latency-ms MS] [--workers N] "
      "[--max-outstanding N] [--max-pending N] [--idle-timeout-ms MS] "
      "[--state-dir DIR] [--standby-dir DIR] [--partitions N] "
      "[--wal-sync per_record|group|none] "
      "[--log-level trace|debug|info|warn|error|off] [--log-json]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dialed;
  std::string path;
  std::string entry = "op";
  std::string state_dir;
  std::string standby_dir;
  std::uint32_t devices = 4;
  std::uint32_t partitions = 1;
  std::uint32_t workers = 0;
  std::uint32_t max_outstanding = 64;
  store::wal_options wal_opts;
  net::server_config cfg;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--entry") {
        entry = next();
      } else if (arg == "--devices") {
        devices = parse_u32(next(), 100000);
        if (devices == 0) throw error("--devices needs a nonzero count");
      } else if (arg == "--bind") {
        cfg.bind_addr = next();
      } else if (arg == "--port") {
        cfg.tcp_port = static_cast<std::uint16_t>(parse_u32(next(), 0xffff));
      } else if (arg == "--udp-port") {
        cfg.udp_port = static_cast<std::uint16_t>(parse_u32(next(), 0xffff));
      } else if (arg == "--no-udp") {
        cfg.enable_udp = false;
      } else if (arg == "--batch-max") {
        cfg.batching.batch_max = parse_u32(next(), 100000);
        if (cfg.batching.batch_max == 0) {
          throw error("--batch-max needs a nonzero count");
        }
      } else if (arg == "--batch-latency-ms") {
        cfg.batching.batch_latency_ms = parse_u32(next(), 60000);
      } else if (arg == "--workers") {
        workers = parse_u32(next(), 1024);
      } else if (arg == "--max-outstanding") {
        max_outstanding = parse_u32(next(), 100000);
        if (max_outstanding == 0) {
          throw error("--max-outstanding needs a nonzero count");
        }
      } else if (arg == "--max-pending") {
        cfg.max_pending_frames = parse_u32(next(), 1000000);
      } else if (arg == "--idle-timeout-ms") {
        cfg.limits.idle_timeout_ms = parse_u32(next(), 3600000);
      } else if (arg == "--state-dir") {
        state_dir = next();
      } else if (arg == "--standby-dir") {
        standby_dir = next();
      } else if (arg == "--log-level") {
        const std::string v = next();
        obs::log_level lv;
        if (!obs::parse_log_level(v, lv)) {
          throw error("--log-level: unknown level '" + v + "'");
        }
        obs::log().configure(lv, obs::log().json());
      } else if (arg == "--log-json") {
        obs::log().configure(obs::log().level(), true);
      } else if (arg == "--wal-sync") {
        const std::string v = next();
        if (v == "per_record") {
          wal_opts.sync = store::wal_sync::per_record;
        } else if (v == "group") {
          wal_opts.sync = store::wal_sync::group;
        } else if (v == "none") {
          wal_opts.sync = store::wal_sync::none;
        } else {
          throw error("--wal-sync must be per_record, group, or none");
        }
      } else if (arg == "--partitions") {
        partitions = parse_u32(next(), 1024);
        if (partitions == 0) {
          throw error("--partitions needs a nonzero count");
        }
      } else if (!arg.empty() && arg[0] == '-') {
        usage();
        return 2;
      } else {
        path = arg;
      }
    }
  } catch (const error& e) {
    std::fprintf(stderr, "dialed-serve: %s\n", e.what());
    usage();
    return 2;
  }
  if (path.empty()) {
    usage();
    return 2;
  }
  if (!standby_dir.empty() && state_dir.empty()) {
    std::fprintf(stderr,
                 "dialed-serve: --standby-dir needs --state-dir (a "
                 "standby follows a durable store's WAL)\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dialed-serve: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  try {
    instr::link_options lo;
    lo.entry = entry;
    lo.mode = instr::instrumentation::dialed;
    const auto prog = instr::build_operation(ss.str(), lo);

    fleet::hub_config hub_cfg;
    hub_cfg.max_outstanding = max_outstanding;
    hub_cfg.workers = workers;

    const byte_vec demo_master_key(32, 0xAB);
    fleet::partitioned_fleet fleet_parts =
        state_dir.empty()
            ? fleet::partitioned_fleet::create(partitions,
                                               demo_master_key, hub_cfg)
            : [&] {
                store::fleet_store::options so;
                so.master_key = demo_master_key;
                so.hub = hub_cfg;
                so.wal = wal_opts;
                return fleet::partitioned_fleet::open(
                    state_dir, partitions, std::move(so));
              }();

    const auto fw_id = verifier::firmware_artifact::fingerprint(prog);
    std::uint32_t provisioned = 0, resumed = 0;
    for (std::uint32_t id = 1; id <= devices; ++id) {
      const auto p = fleet_parts.index_of(id);
      if (const auto* rec = fleet_parts.registry_of(p).find(id)) {
        if (rec->firmware->id() != fw_id) {
          std::fprintf(stderr,
                       "dialed-serve: device %u is provisioned with a "
                       "different firmware (%.16s...) in %s\n",
                       id, rec->firmware->id_hex().c_str(),
                       state_dir.c_str());
          return 2;
        }
        ++resumed;
      } else {
        fleet_parts.provision(id, prog);
        ++provisioned;
      }
    }

    fleet::hub_like& hub = fleet_parts.router();

    // Warm standbys: one follower + shipper per partition store, wired
    // before the server exists and destroyed after it stops (the server
    // reads shipper stats on every scrape).
    std::vector<std::unique_ptr<store::wal_follower>> followers;
    std::vector<std::unique_ptr<store::wal_shipper>> shippers;
    std::vector<const store::wal_shipper*> shipper_ptrs;
    if (!standby_dir.empty()) {
      auto stores = fleet_parts.stores();
      for (std::size_t p = 0; p < stores.size(); ++p) {
        store::follower_config fc;
        fc.retired_memory = hub_cfg.retired_memory;
        followers.push_back(std::make_unique<store::wal_follower>(
            standby_dir + "/p" + std::to_string(p), fc));
        shippers.push_back(std::make_unique<store::wal_shipper>());
        shippers.back()->add_follower(followers.back().get());
        stores[p]->attach_shipper(shippers.back().get());
        shipper_ptrs.push_back(shippers.back().get());
      }
      obs::log().emit(obs::log_level::info, "standby_attached",
                      {{"dir", standby_dir},
                       {"partitions", stores.size()}});
    }

    net::attest_server server(hub, cfg,
                              state_dir.empty()
                                  ? std::vector<store::fleet_store*>{}
                                  : fleet_parts.stores(),
                              shipper_ptrs);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::printf("fleet:    %u device(s) (%u provisioned, %u resumed), "
                "firmware %.16s...\n",
                devices, provisioned, resumed,
                fleet_parts.registry_of(fleet_parts.index_of(1))
                    .find(1)
                    ->firmware->id_hex()
                    .c_str());
    if (partitions > 1) {
      std::printf("partitions: %u hubs behind the consistent-hash "
                  "router\n",
                  partitions);
    }
    if (!state_dir.empty()) {
      unsigned long long wal_total = 0;
      unsigned long long gen_max = 0;
      for (auto* st : fleet_parts.stores()) {
        wal_total += st->wal_records();
        gen_max = std::max<unsigned long long>(gen_max, st->generation());
      }
      std::printf("state:    %s (generation %llu, %llu WAL records, "
                  "wal-sync=%s)\n",
                  state_dir.c_str(), gen_max, wal_total,
                  store::to_string(wal_opts.sync));
    }
    std::printf("batching: max=%zu latency=%ums workers=%zu\n",
                cfg.batching.batch_max, cfg.batching.batch_latency_ms,
                hub.batch_workers());
    std::printf("listening: tcp=%u udp=%u\n",
                static_cast<unsigned>(server.tcp_port()),
                cfg.enable_udp ? static_cast<unsigned>(server.udp_port())
                               : 0u);
    std::fflush(stdout);

    server.run();
    g_server = nullptr;
    // Detach shippers before they (and the followers) are destroyed.
    if (!standby_dir.empty()) {
      for (auto* st : fleet_parts.stores()) st->attach_shipper(nullptr);
    }

    const auto net = server.stats();
    const auto hs = hub.stats();
    std::printf("served:   %llu conns, %llu tcp + %llu udp frames, "
                "%llu accepted, %llu rejected, %llu batches "
                "(mean %.1f frames)\n",
                static_cast<unsigned long long>(net.connections_accepted),
                static_cast<unsigned long long>(net.tcp_frames),
                static_cast<unsigned long long>(net.udp_datagrams),
                static_cast<unsigned long long>(hs.reports_accepted),
                static_cast<unsigned long long>(hs.reports_submitted() -
                                                hs.reports_accepted),
                static_cast<unsigned long long>(hs.verify_batches),
                hs.mean_batch_frames());
    return 0;
  } catch (const error& e) {
    std::fprintf(stderr, "dialed-serve: %s\n", e.what());
    return 1;
  }
}
