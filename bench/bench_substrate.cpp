// Substrate microbenchmarks (A3): the building blocks' host-side
// performance — HMAC-SHA256 throughput (SW-Att's workload), emulator
// instruction throughput, toolchain latency, and verifier replay speed.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>

#include "bench_common.h"
#include "crypto/hmac.h"
#include "fleet/partition.h"
#include "fleet/verifier_hub.h"
#include "masm/masm.h"
#include "net/client.h"
#include "net/server.h"
#include "proto/wire.h"
#include "store/fleet_store.h"
#include "store/ship.h"
#include "verifier/firmware_artifact.h"
#include "verifier/replay.h"
#include "verifier/verifier.h"

namespace {

using dialed::byte_vec;
using dialed::bench::bench_key;

void BM_hmac_sha256(benchmark::State& state) {
  const byte_vec key(32, 0x11);
  byte_vec data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    const auto mac = dialed::crypto::hmac_sha256::compute(key, data);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_hmac_sha256)->Arg(256)->Arg(2048)->Arg(16384);

void BM_sha256_backend(benchmark::State& state) {
  // The PR 8 dispatch sweep: the same bytes through every compression
  // backend. Unsupported rows (non-x86, DIALED_SHA256_SIMD=OFF, CPU
  // without the extension) are skipped, not failed.
  const auto backend =
      static_cast<dialed::crypto::sha256_backend>(state.range(0));
  if (!dialed::crypto::sha256_backend_supported(backend)) {
    state.SkipWithError("backend not supported by this build/CPU");
    return;
  }
  const auto prev = dialed::crypto::sha256_active_backend();
  dialed::crypto::sha256_force_backend(backend);
  byte_vec data(static_cast<std::size_t>(state.range(1)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131);
  }
  for (auto _ : state) {
    const auto d = dialed::crypto::sha256::hash(data);
    benchmark::DoNotOptimize(d);
  }
  dialed::crypto::sha256_force_backend(prev);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(dialed::crypto::to_string(backend));
}
BENCHMARK(BM_sha256_backend)
    ->ArgNames({"backend", "len"})
    ->ArgsProduct({{0, 1, 2}, {256, 2048, 16384}});

void BM_hmac_sha256_keystate(benchmark::State& state) {
  // The cached-key-schedule path the verifier hot loop runs: ipad/opad
  // midstates derived once, replayed per message. Compare against
  // BM_hmac_sha256 at the same length for the two-compression saving.
  const byte_vec key(32, 0x11);
  const auto ks = dialed::crypto::hmac_keystate::derive(key);
  byte_vec data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    const auto mac = dialed::crypto::hmac_sha256::compute(ks, data);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_hmac_sha256_keystate)->Arg(256)->Arg(2048)->Arg(16384);

void BM_emulator_mips(benchmark::State& state) {
  // A tight counted loop: 3 instructions per iteration.
  dialed::emu::memory_map map;
  const auto img = dialed::masm::assemble_text(
      "        .org 0xc000\n"
      "__start:\n"
      "        mov #50000, r15\n"
      "loop:   dec r15\n"
      "        jne loop\n"
      "        mov #1, &HALT_PORT\n"
      "        .org RESET_VECTOR\n"
      "        .word __start\n",
      map.predefined_symbols());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    dialed::emu::machine m(map);
    m.load(img);
    m.reset();
    m.run(10'000'000);
    instructions += 100'003;
  }
  state.counters["emulated_instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_emulator_mips)->Unit(benchmark::kMillisecond);

void BM_assembler(benchmark::State& state) {
  std::string src = "        .org 0xc000\n";
  for (int i = 0; i < 200; ++i) {
    src += "l" + std::to_string(i) + ": mov #" + std::to_string(i) +
           ", r15\n        add r15, r14\n";
  }
  for (auto _ : state) {
    const auto img = dialed::masm::assemble_text(src);
    benchmark::DoNotOptimize(img);
  }
}
BENCHMARK(BM_assembler)->Unit(benchmark::kMillisecond);

void BM_full_attestation_round(benchmark::State& state) {
  // Device run + SW-Att + Vrf verification (MAC + abstract execution).
  const auto app = dialed::apps::evaluation_apps()[1];  // FireSensor
  const auto prog =
      dialed::apps::build_app(app, dialed::instr::instrumentation::dialed);
  dialed::proto::prover_device dev(prog, bench_key());
  dialed::verifier::op_verifier vrf(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  for (auto _ : state) {
    const auto rep = dev.invoke(chal, app.representative_input);
    const auto v = vrf.verify(rep);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_full_attestation_round)->Unit(benchmark::kMillisecond);

void BM_verifier_replay_scaling(benchmark::State& state) {
  // Vrf-side abstract-execution cost as a function of attested work (the
  // loop count drives both op length and log size).
  const auto n = static_cast<std::uint16_t>(state.range(0));
  dialed::instr::link_options lo;
  lo.entry = "op";
  lo.mode = dialed::instr::instrumentation::dialed;
  const auto prog = dialed::instr::build_operation(
      "int g = 3;"
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + g + i; } return s; }",
      lo);
  dialed::proto::prover_device dev(prog, bench_key());
  dialed::verifier::op_verifier vrf(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  dialed::proto::invocation inv;
  inv.args[0] = n;
  const auto rep = dev.invoke(chal, inv);
  double instructions = 0;
  for (auto _ : state) {
    const auto v = vrf.verify(rep);
    instructions = static_cast<double>(v.replay_instructions);
    benchmark::DoNotOptimize(v);
  }
  state.counters["replayed_instr"] = instructions;
  state.counters["log_bytes"] = dev.last_log_bytes();
}
BENCHMARK(BM_verifier_replay_scaling)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Shared scaffolding for the fleet verify_batch benchmarks: `n_devices`
// provisioned devices x `rounds` wire v2 frames each. Frames are produced
// once (device emulation is the slow part and is not what these measure);
// each iteration re-arms a hub with the same challenge RNG seed so the
// pre-built frames' nonces are outstanding again, then times only
// verify_batch: decode + per-device key MAC + abstract execution.
struct fleet_batch_bench {
  dialed::fleet::device_registry reg{bench_key()};
  dialed::fleet::hub_config cfg;
  std::vector<dialed::fleet::device_id> ids;
  std::vector<dialed::byte_vec> frames;
  int rounds = 4;

  explicit fleet_batch_bench(std::uint32_t n_devices, int n_rounds = 4)
      : rounds(n_rounds) {
    cfg.seed = 0xfee1f1ee7ull;
    cfg.max_outstanding = static_cast<std::uint32_t>(rounds);
    cfg.sequential_batch = true;  // callers override for parallel runs
    // These benches measure the raw per-report verify pipeline. The
    // frames deliberately share attested inputs (one firmware, same
    // args), so the replay memo would turn all but one replay per round
    // into a cache hit and hide the dispatch cost being measured —
    // BM_fleet_verify_batch_memoized quantifies that win separately.
    cfg.replay_memo_entries = 0;

    dialed::instr::link_options lo;
    lo.entry = "op";
    lo.mode = dialed::instr::instrumentation::dialed;
    const auto prog = dialed::instr::build_operation(
        "int g = 3;"
        "int op(int n) { int s = 0; int i;"
        "  for (i = 0; i < n; i++) { s = s + g + i; } return s; }",
        lo);
    for (std::uint32_t d = 0; d < n_devices; ++d) {
      ids.push_back(reg.provision(prog));
    }

    dialed::fleet::verifier_hub setup_hub(reg, cfg);
    const auto grants = issue_all(setup_hub);
    std::size_t g = 0;
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t d = 0; d < ids.size(); ++d, ++g) {
        dialed::proto::prover_device dev(prog, reg.derive_key(ids[d]));
        dialed::proto::invocation inv;
        inv.args[0] = static_cast<std::uint16_t>(8 + r);
        const auto rep = dev.invoke(grants[g].nonce, inv);
        dialed::proto::frame_info info;
        info.device_id = ids[d];
        info.seq = grants[g].seq;
        frames.push_back(dialed::proto::encode_frame(info, rep));
      }
    }
  }

  std::vector<dialed::fleet::challenge_grant> issue_all(
      dialed::fleet::verifier_hub& hub) const {
    std::vector<dialed::fleet::challenge_grant> grants;
    for (int r = 0; r < rounds; ++r) {
      for (const auto id : ids) grants.push_back(hub.challenge(id));
    }
    return grants;
  }

  void run(benchmark::State& state) {
    for (auto _ : state) {
      state.PauseTiming();
      dialed::fleet::verifier_hub hub(reg, cfg);
      issue_all(hub);  // identical seed + order -> identical nonces
      // (No per-device verifier warmup needed anymore: every device
      // verifies off the registry's shared firmware artifact, interned
      // once at provisioning.)
      state.ResumeTiming();
      const auto results = hub.verify_batch(frames);
      const bool all_ok =
          std::all_of(results.begin(), results.end(),
                      [](const auto& r) { return r.accepted(); });
      if (!all_ok) {
        state.SkipWithError("batch report rejected");
        break;
      }
      benchmark::DoNotOptimize(results);
    }
    state.counters["reports_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(frames.size()),
        benchmark::Counter::kIsRate);
  }
};

void BM_fleet_verify_batch(benchmark::State& state) {
  // The sequential baseline: one thread, `range(0)` devices x 4 rounds.
  fleet_batch_bench bench(static_cast<std::uint32_t>(state.range(0)));
  bench.run(state);
}
BENCHMARK(BM_fleet_verify_batch)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_fleet_verify_batch_one_firmware(benchmark::State& state) {
  // The fleet's dominant shape: MANY devices, ONE firmware image. All
  // `range(0)` devices intern to a single shared firmware_artifact, so
  // per-device verifier memory is O(firmwares) + a per-device record —
  // the counters report the before/after memory model:
  //   bytes_per_device_dedicated — the pre-catalog design (every device
  //     cached an op_verifier owning its own linked_program copy);
  //   bytes_per_device_shared    — the catalog design (one artifact,
  //     amortized over the fleet, plus the per-device record).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  fleet_batch_bench bench(n, /*n_rounds=*/1);
  bench.run(state);

  const auto* rec = bench.reg.find(bench.ids[0]);
  const double artifact_bytes =
      static_cast<double>(rec->firmware->footprint_bytes());
  const double program_bytes = static_cast<double>(
      dialed::verifier::firmware_artifact::program_footprint_bytes(
          rec->firmware->program()));
  const double record_bytes =
      static_cast<double>(sizeof(dialed::fleet::device_record)) +
      static_cast<double>(rec->key.capacity());
  state.counters["devices"] = n;
  state.counters["firmwares"] =
      static_cast<double>(bench.reg.catalog()->size());
  state.counters["artifact_bytes"] = artifact_bytes;
  state.counters["bytes_per_device_shared"] =
      artifact_bytes / n + record_bytes;
  state.counters["bytes_per_device_dedicated"] =
      program_bytes + record_bytes;
}
BENCHMARK(BM_fleet_verify_batch_one_firmware)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_fleet_verify_batch_memoized(benchmark::State& state) {
  // The memo's headline case: repeated rounds whose attested inputs are
  // byte-identical (a fleet of idle devices re-attesting). The MAC still
  // runs per report; only the §III replay is served from the LRU cache.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  fleet_batch_bench bench(n, /*n_rounds=*/1);
  bench.cfg.replay_memo_entries = 1024;
  bench.run(state);
}
BENCHMARK(BM_fleet_verify_batch_memoized)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_verifier_replay_dispatch(benchmark::State& state) {
  // Direct A/B of the replay loop's two dispatch paths on one report:
  // range(1) == 0 pins the legacy live-decode loop, 1 the predecoded
  // fast path. Same bytes, same verdict — only the loop differs.
  const auto n = static_cast<std::uint16_t>(state.range(0));
  const bool fast = state.range(1) != 0;
  dialed::instr::link_options lo;
  lo.entry = "op";
  lo.mode = dialed::instr::instrumentation::dialed;
  const auto prog = dialed::instr::build_operation(
      "int g = 3;"
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + g + i; } return s; }",
      lo);
  dialed::proto::prover_device dev(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  dialed::proto::invocation inv;
  inv.args[0] = n;
  const auto rep = dev.invoke(chal, inv);
  const auto fw = dialed::verifier::firmware_artifact::build(prog);
  dialed::verifier::replay_force_dispatch(
      fast ? dialed::verifier::replay_dispatch::fast
           : dialed::verifier::replay_dispatch::legacy);
  double instructions = 0;
  for (auto _ : state) {
    const auto r = dialed::verifier::replay_operation(*fw, rep, {});
    instructions = static_cast<double>(r.instructions);
    benchmark::DoNotOptimize(r);
  }
  dialed::verifier::replay_force_dispatch(
      dialed::verifier::replay_dispatch::fast);
  state.counters["replayed_instr"] = instructions;
  state.counters["instr_per_s"] = benchmark::Counter(
      instructions * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_verifier_replay_dispatch)
    ->ArgNames({"n", "fast"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_fleet_obs_overhead(benchmark::State& state) {
  // The PR 9 acceptance gate: the pipeline observability layer (span
  // recorder clock reads, histogram bumps, flight-recorder admission
  // check) against the identical workload with cfg.obs.enabled = false
  // (which removes every clock read from the hot path). Run both arms
  // and compare their reports_per_s — the instrumented arm must stay
  // within 2% of the baseline (plus noise).
  const bool instrumented = state.range(0) != 0;
  fleet_batch_bench bench(64, /*n_rounds=*/4);
  bench.cfg.obs.enabled = instrumented;
  bench.run(state);
  state.counters["instrumented"] = instrumented ? 1 : 0;
}
BENCHMARK(BM_fleet_obs_overhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_fleet_verify_batch_parallel(benchmark::State& state) {
  // Thread-scaling sweep over the same workload: 32 devices x 4 rounds
  // (128 frames/batch), `range(0)` = total verify threads. 1 means the
  // strictly sequential inline path (the baseline the speedup is measured
  // against); w > 1 means a pool of w-1 workers plus the calling thread.
  const auto total_threads = static_cast<std::uint32_t>(state.range(0));
  fleet_batch_bench bench(32);
  if (total_threads > 1) {
    bench.cfg.sequential_batch = false;
    bench.cfg.workers = total_threads - 1;
  }
  bench.run(state);
  state.counters["threads"] = total_threads;
}
BENCHMARK(BM_fleet_verify_batch_parallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_net_ingest_loopback(benchmark::State& state) {
  // The attestation service end to end over a loopback socket: 8 devices
  // x 8 pre-built rounds pipelined through one TCP connection into the
  // epoll reactor, batched into verify_batch at `range(0)` = batch_max,
  // results matched back by (device, seq). What it adds over
  // BM_fleet_verify_batch is the whole service path: stream framing,
  // reactor wakeups, the dispatcher handoff, and response writes.
  fleet_batch_bench bench(8, 8);
  dialed::net::server_config scfg;
  scfg.bind_addr = "127.0.0.1";
  scfg.batching.batch_max = static_cast<std::size_t>(state.range(0));
  scfg.batching.batch_latency_ms = 1;
  for (auto _ : state) {
    state.PauseTiming();
    {
      dialed::fleet::verifier_hub hub(bench.reg, bench.cfg);
      bench.issue_all(hub);  // identical seed + order -> identical nonces
      dialed::net::attest_server server(hub, scfg);
      server.start();
      dialed::net::attest_client client("127.0.0.1", server.tcp_port());
      state.ResumeTiming();
      for (const auto& f : bench.frames) client.send_report(f);
      std::size_t ok = 0;
      for (std::size_t i = 0; i < bench.frames.size(); ++i) {
        if (client.recv_result().accepted) ++ok;
      }
      state.PauseTiming();
      if (ok != bench.frames.size()) {
        state.SkipWithError("report rejected over loopback");
        state.ResumeTiming();
        break;
      }
      server.stop();
    }
    state.ResumeTiming();
  }
  state.counters["reports_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(bench.frames.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_net_ingest_loopback)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_wire_delta_encode(benchmark::State& state) {
  // Wire v2.1 transport win + encode cost for a steady-state polling
  // loop: one device, FireSensor firmware, `rounds` reports whose input
  // drifts slightly between rounds (the high-frequency-polling shape the
  // delta codec exists for). Each iteration encodes the whole loop the
  // way the emitter would — round r as a sparse delta against round
  // r-1's OR — and the counters report mean bytes per report against
  // the v2 full-frame baseline. The acceptance bar is the ROADMAP's
  // >= 2x reduction; steady-state polling lands far above it.
  const auto app = dialed::apps::evaluation_apps()[1];  // FireSensor
  const auto prog =
      dialed::apps::build_app(app, dialed::instr::instrumentation::dialed);
  dialed::proto::prover_device dev(prog, bench_key());
  constexpr int rounds = 8;
  std::vector<dialed::verifier::attestation_report> reps;
  std::array<std::uint8_t, 16> chal{};
  for (int r = 0; r < rounds; ++r) {
    chal.fill(static_cast<std::uint8_t>(r + 1));
    auto inv = app.representative_input;
    // Drift one ADC sample per round: a real sensor's readings wobble,
    // so consecutive ORs differ in a few I-Log bytes, not zero.
    if (!inv.adc_samples.empty()) {
      inv.adc_samples[0] =
          static_cast<std::uint16_t>(inv.adc_samples[0] + r);
    }
    reps.push_back(dev.invoke(chal, inv));
  }

  dialed::byte_vec frame;
  std::uint64_t delta_bytes = 0, full_bytes = 0, frames = 0;
  for (auto _ : state) {
    delta_bytes = full_bytes = frames = 0;
    for (int r = 0; r < rounds; ++r) {
      dialed::proto::frame_info info;
      info.device_id = 1;
      info.seq = static_cast<std::uint32_t>(r + 1);
      if (r == 0) {
        // Round 0 has no baseline: both transports ship a full frame.
        benchmark::DoNotOptimize(
            dialed::proto::encode_frame_into(info, reps[0], frame));
        delta_bytes += frame.size();
        full_bytes += frame.size();
      } else {
        benchmark::DoNotOptimize(dialed::proto::encode_delta_frame_into(
            info, reps[static_cast<std::size_t>(r)],
            static_cast<std::uint32_t>(r),
            reps[static_cast<std::size_t>(r - 1)].or_bytes, frame));
        delta_bytes += frame.size();
        benchmark::DoNotOptimize(dialed::proto::encode_frame_into(
            info, reps[static_cast<std::size_t>(r)], frame));
        full_bytes += frame.size();
      }
      ++frames;
    }
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(rounds) *
      static_cast<std::int64_t>(reps[0].or_bytes.size()));
  state.counters["frames"] = static_cast<double>(frames);
  state.counters["v2_bytes_per_report"] =
      static_cast<double>(full_bytes) / static_cast<double>(frames);
  state.counters["v21_bytes_per_report"] =
      static_cast<double>(delta_bytes) / static_cast<double>(frames);
  state.counters["compression_x"] =
      static_cast<double>(full_bytes) / static_cast<double>(delta_bytes);
  // The wire win must not be bought with a slower encoder than the MCU
  // link can feed; the bytes/sec rate above reports encode throughput.
  if (full_bytes < 2 * delta_bytes) {
    state.SkipWithError("delta compression fell under the 2x bar");
  }
}
BENCHMARK(BM_wire_delta_encode);

void BM_wire_decode_frame(benchmark::State& state) {
  // Copy vs borrow decode of a v2 frame: borrow is the hub's submit
  // path (or_view into the frame, no OR memcpy); copy is the
  // self-contained fallback. The spread is the zero-copy win per frame.
  const auto app = dialed::apps::evaluation_apps()[1];
  const auto prog =
      dialed::apps::build_app(app, dialed::instr::instrumentation::dialed);
  dialed::proto::prover_device dev(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  chal.fill(0x5a);
  dialed::proto::frame_info info;
  info.device_id = 1;
  const auto frame =
      dialed::proto::encode_frame(info,
                                  dev.invoke(chal,
                                             app.representative_input));
  const auto mode = state.range(0) == 0
                        ? dialed::proto::decode_mode::copy
                        : dialed::proto::decode_mode::borrow;
  dialed::proto::decoded_frame scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dialed::proto::decode_frame_into(frame, scratch, mode));
    benchmark::DoNotOptimize(scratch.or_view.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
  state.counters["or_bytes"] =
      static_cast<double>(scratch.or_view.size());
  state.SetLabel(state.range(0) == 0 ? "copy" : "borrow");
}
BENCHMARK(BM_wire_decode_frame)->ArgNames({"mode"})->Arg(0)->Arg(1);

void BM_fleet_delta_submit(benchmark::State& state) {
  // End-to-end verify cost of the delta path: hub baseline resolution +
  // reconstruction + MAC + abstract execution, vs the same report as a
  // full v2 frame (BM_fleet_verify_batch is the batch-shaped baseline).
  dialed::fleet::device_registry reg(bench_key());
  dialed::instr::link_options lo;
  lo.entry = "op";
  lo.mode = dialed::instr::instrumentation::dialed;
  const auto prog = dialed::instr::build_operation(
      "int g = 3;"
      "int op(int n) { int s = 0; int i;"
      "  for (i = 0; i < n; i++) { s = s + g + i; } return s; }",
      lo);
  const auto id = reg.provision(prog);
  dialed::fleet::hub_config cfg;
  cfg.seed = 0xfee1f1ee7ull;
  cfg.sequential_batch = true;
  cfg.max_outstanding = 2;

  dialed::proto::prover_device dev(prog, reg.derive_key(id));
  // Two rounds produced once: round 1 primes the baseline each
  // iteration, round 2 is the timed delta submit.
  dialed::fleet::verifier_hub setup(reg, cfg);
  const auto g1 = setup.challenge(id);
  const auto g2 = setup.challenge(id);
  dialed::proto::invocation inv;
  inv.args[0] = 8;
  const auto rep1 = dev.invoke(g1.nonce, inv);
  inv.args[0] = 9;
  const auto rep2 = dev.invoke(g2.nonce, inv);
  dialed::proto::frame_info i1, i2;
  i1.device_id = i2.device_id = id;
  i1.seq = g1.seq;
  i2.seq = g2.seq;
  const auto full1 = dialed::proto::encode_frame(i1, rep1);
  const auto delta2 =
      dialed::proto::encode_delta_frame(i2, rep2, g1.seq, rep1.or_bytes);

  for (auto _ : state) {
    state.PauseTiming();
    dialed::fleet::verifier_hub hub(reg, cfg);
    (void)hub.challenge(id);  // same seed -> same nonces
    (void)hub.challenge(id);
    if (!hub.submit(full1).accepted()) {
      state.SkipWithError("baseline round rejected");
      break;
    }
    state.ResumeTiming();
    const auto r = hub.submit(delta2);
    if (!r.accepted()) {
      state.SkipWithError("delta round rejected");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["delta_frame_bytes"] =
      static_cast<double>(delta2.size());
  state.counters["full_frame_bytes"] = static_cast<double>(full1.size());
}
BENCHMARK(BM_fleet_delta_submit)->Unit(benchmark::kMillisecond);

void BM_fleet_store_wal_append(benchmark::State& state) {
  // Durability tax on the hot path, swept across the sync policies: one
  // journaled verdict per iteration (the retire+verdict pair every
  // verified report appends) followed by the hub's sync_barrier — a
  // no-op under none, already-durable under per_record, and the
  // group-commit protocol under group. The threaded rows are where
  // group commit earns its keep: concurrent barriers fold into shared
  // fsyncs, so per-thread cost amortizes while per_record's inline
  // fsyncs serialize.
  namespace fs = std::filesystem;
  static std::unique_ptr<dialed::store::fleet_state> shared;
  static dialed::fleet::device_id shared_id = 0;
  const auto dir =
      fs::temp_directory_path() / "dialed-bench-store-append";
  if (state.thread_index() == 0) {
    fs::remove_all(dir);
    dialed::store::fleet_store::options opts;
    opts.master_key = bench_key();
    opts.hub.sequential_batch = true;
    opts.wal.sync = static_cast<dialed::store::wal_sync>(state.range(0));
    shared = std::make_unique<dialed::store::fleet_state>(
        dialed::store::fleet_store::open(dir.string(), opts));
    shared_id = shared->registry->provision(dialed::apps::build_app(
        dialed::apps::evaluation_apps()[1],
        dialed::instr::instrumentation::dialed));
  }
  // Unique nonce per thread+iteration: the store's online mirror
  // enforces challenge-before-retire, exactly like WAL replay would.
  dialed::fleet::nonce16 nonce{};
  nonce[0] = static_cast<std::uint8_t>(state.thread_index());
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    for (std::size_t i = 0; i < 8; ++i) {
      nonce[8 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
    }
    shared->store->on_challenge(shared_id,
                                static_cast<std::uint32_t>(seq), nonce,
                                /*issued_at=*/0);
    shared->store->on_retire(shared_id, nonce,
                             dialed::fleet::nonce_fate::consumed);
    shared->store->on_verdict(shared_id,
                              dialed::proto::proto_error::none, true);
    shared->store->sync_barrier();
  }
  state.counters["journaled_reports_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  // Label from the arg, not `shared` — thread 0 tears `shared` down
  // below while the other threads are still reporting.
  state.SetLabel(dialed::store::to_string(
      static_cast<dialed::store::wal_sync>(state.range(0))));
  if (state.thread_index() == 0) {
    const auto gc = shared->store->group_commit();
    if (gc.syncs > 0) {
      state.counters["fsyncs"] = static_cast<double>(gc.syncs);
      state.counters["records_per_fsync"] =
          static_cast<double>(gc.records) / static_cast<double>(gc.syncs);
    }
    state.counters["wal_bytes_per_report"] =
        static_cast<double>(shared->store->wal_bytes()) /
        static_cast<double>(std::max<std::uint64_t>(
            1, shared->store->wal_records() / 3));
    shared.reset();
    fs::remove_all(dir);
  }
}
BENCHMARK(BM_fleet_store_wal_append)
    ->ArgNames({"sync"})
    // 0 = per_record, 1 = group, 2 = none (store::wal_sync order).
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Threads(1)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

void BM_fleet_store_reopen(benchmark::State& state) {
  // Crash-recovery latency: reopen a store holding `range(0)` devices on
  // one firmware (snapshot load + program parse + artifact rebuild +
  // re-intern + hub restore).
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "dialed-bench-store-open";
  fs::remove_all(dir);
  dialed::store::fleet_store::options opts;
  opts.master_key = bench_key();
  opts.hub.sequential_batch = true;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  {
    auto st = dialed::store::fleet_store::open(dir.string(), opts);
    const auto prog = dialed::apps::build_app(
        dialed::apps::evaluation_apps()[1],
        dialed::instr::instrumentation::dialed);
    for (std::uint32_t i = 0; i < n; ++i) {
      (void)st.registry->provision(prog);
      (void)st.hub->challenge(i + 1);
    }
    st.store->compact();
  }
  for (auto _ : state) {
    auto st = dialed::store::fleet_store::open(dir.string(), opts);
    benchmark::DoNotOptimize(st.hub->outstanding(1));
  }
  state.counters["devices"] = n;
  fs::remove_all(dir);
}
BENCHMARK(BM_fleet_store_reopen)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_partition_router_overhead(benchmark::State& state) {
  // Routing tax on the sequential submit path: the same pre-built frames
  // pushed through a bare hub (Arg 0) or a partition_router over N hubs
  // (Arg N) — peek + ring lookup + virtual dispatch is all the router
  // adds. Frames are replays, the CHEAPEST submit the hub resolves, so
  // the measured overhead is the worst-case ratio; accepted rounds
  // (emulated replay verification) bury it entirely.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto fleet = dialed::fleet::partitioned_fleet::create(
      std::max<std::size_t>(1, n), bench_key());
  const auto prog = dialed::apps::build_app(
      dialed::apps::evaluation_apps()[1],
      dialed::instr::instrumentation::dialed);

  std::vector<byte_vec> frames;
  for (dialed::fleet::device_id id = 1; frames.size() < 8; ++id) {
    const auto p = fleet.index_of(id);
    fleet.provision(id, prog);
    dialed::proto::prover_device dev(
        *fleet.registry_of(p).find(id)->program,
        fleet.registry_of(p).find(id)->key);
    const auto g = fleet.router().challenge(id);
    dialed::proto::frame_info info;
    info.device_id = id;
    info.seq = g.seq;
    const auto frame = dialed::proto::encode_frame(
        info, dev.invoke(g.nonce, dialed::apps::evaluation_apps()[1]
                                      .representative_input));
    if (!fleet.router().submit(frame).accepted()) {
      state.SkipWithError("setup round rejected");
      return;
    }
    frames.push_back(frame);
  }

  dialed::fleet::hub_like& target =
      n == 0 ? static_cast<dialed::fleet::hub_like&>(fleet.hub_of(0))
             : fleet.router();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(target.submit(frames[i]));
    i = (i + 1) % frames.size();
  }
  state.counters["submits_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_partition_router_overhead)->Arg(0)->Arg(1)->Arg(4)->Arg(16);

void BM_wal_ship_apply(benchmark::State& state) {
  // Follower apply throughput: records/s a warm standby validates,
  // applies to its image, and appends to its own WAL. The stream is one
  // real attestation round's records (challenge, retire, baseline,
  // verdict) captured off a live store and replayed in a loop — each
  // cycle is a legal continuation, so the follower never desyncs.
  namespace fs = std::filesystem;
  struct capture_sink final : dialed::store::ship_sink {
    std::uint64_t gen = 0;
    byte_vec snapshot;
    std::vector<byte_vec> records;
    void on_snapshot(std::uint64_t g,
                     std::span<const std::uint8_t> s) override {
      gen = g;
      snapshot.assign(s.begin(), s.end());
    }
    void on_record(std::uint64_t,
                   std::span<const std::uint8_t> p) override {
      records.emplace_back(p.begin(), p.end());
    }
  };

  const auto dir = fs::temp_directory_path() / "dialed-bench-ship";
  fs::remove_all(dir);
  dialed::store::fleet_store::options opts;
  opts.master_key = bench_key();
  opts.hub.sequential_batch = true;
  capture_sink cap;
  {
    auto st = dialed::store::fleet_store::open((dir / "p").string(), opts);
    const auto app = dialed::apps::evaluation_apps()[1];
    const auto prog = dialed::apps::build_app(
        app, dialed::instr::instrumentation::dialed);
    const auto id = st.registry->provision(prog);
    st.store->attach_shipper(&cap);  // snapshot covers the provision
    dialed::proto::prover_device dev(*st.registry->find(id)->program,
                                     st.registry->find(id)->key);
    const auto g = st.hub->challenge(id);
    dialed::proto::frame_info info;
    info.device_id = id;
    info.seq = g.seq;
    const auto frame = dialed::proto::encode_frame(
        info, dev.invoke(g.nonce, app.representative_input));
    if (!st.hub->submit(frame).accepted() || cap.records.empty()) {
      state.SkipWithError("capture round failed");
      fs::remove_all(dir);
      return;
    }
  }

  dialed::store::follower_config fcfg;
  fcfg.retired_memory = 64;  // bound the validation image's nonce ring
  dialed::store::wal_follower follower((dir / "standby").string(), fcfg);
  follower.on_snapshot(cap.gen, cap.snapshot);
  for (auto _ : state) {
    for (const auto& p : cap.records) follower.on_record(cap.gen, p);
  }
  if (const auto err = follower.error()) {
    state.SkipWithError(err->what());
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cap.records.size()),
      benchmark::Counter::kIsRate);
  fs::remove_all(dir);
}
BENCHMARK(BM_wal_ship_apply);

void BM_swatt_device_cost(benchmark::State& state) {
  // The modelled on-device cost of SW-Att in MCU cycles (context output).
  const auto app = dialed::apps::evaluation_apps()[1];
  const auto prog =
      dialed::apps::build_app(app, dialed::instr::instrumentation::dialed);
  dialed::proto::prover_device dev(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  std::uint64_t swatt_cycles = 0;
  for (auto _ : state) {
    dev.invoke(chal, app.representative_input);
    swatt_cycles = dev.rot().vrased().last_swatt_cycles();
  }
  state.counters["swatt_mcu_cycles"] = static_cast<double>(swatt_cycles);
}
BENCHMARK(BM_swatt_device_cost)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
