// Ablation A2 (F5 design): full control-flow logging (every transfer's
// destination, as the paper describes) vs the optimized variant that logs
// only non-deterministic transfers (conditional outcomes, returns, indirect
// calls). Vrf can reconstruct the path either way; the trade-off is log
// bytes + cycles vs verifier work.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using dialed::bench::bench_key;
using dialed::bench::measure;

void BM_run_cfmode(benchmark::State& state) {
  const auto app =
      dialed::apps::evaluation_apps()[static_cast<std::size_t>(state.range(0))];
  dialed::instr::pass_options popts;
  popts.optimized_cf = state.range(1) != 0;
  const auto prog = dialed::apps::build_app(
      app, dialed::instr::instrumentation::dialed, popts);
  dialed::proto::prover_device dev(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  for (auto _ : state) {
    dev.invoke(chal, app.representative_input);
  }
  state.counters["log_bytes"] = dev.last_log_bytes();
  state.counters["op_cycles"] = static_cast<double>(dev.last_op_cycles());
  state.SetLabel(app.name + (popts.optimized_cf ? "/optimized" : "/full"));
}
BENCHMARK(BM_run_cfmode)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==========================================================\n");
  std::printf("DIALED reproduction — ablation A2: CF logging granularity\n");
  std::printf("==========================================================\n");
  std::printf("\n%-18s %18s %18s\n", "Application", "full CF log",
              "optimized CF log");
  for (const auto& app : dialed::apps::evaluation_apps()) {
    const auto full = measure(app, dialed::instr::instrumentation::dialed);
    dialed::instr::pass_options opt;
    opt.optimized_cf = true;
    const auto lean =
        measure(app, dialed::instr::instrumentation::dialed, opt);
    std::printf("%-18s %14d B   %14d B   (log bytes)\n", app.name.c_str(),
                full.log_bytes, lean.log_bytes);
    std::printf("%-18s %14zu B   %14zu B   (code bytes)\n", "",
                full.code_size, lean.code_size);
    std::printf("%-18s %14llu cy  %14llu cy  (op cycles)\n", "",
                static_cast<unsigned long long>(full.op_cycles),
                static_cast<unsigned long long>(lean.op_cycles));
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
