// Fig. 6(b) reproduction: runtime (MCU cycles) of one embedded-operation
// invocation — unmodified vs Tiny-CFA vs DIALED. Cycle counts come from the
// emulator's SLAU049 timing model, so they are architectural quantities
// (startup and SW-Att are metered out, as in the paper).
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using dialed::bench::bench_key;
using dialed::bench::measure;
using dialed::bench::measure_all;

void BM_attested_invocation(benchmark::State& state) {
  // Host-side wall time of one full attested round (run + SW-Att).
  const auto app =
      dialed::apps::evaluation_apps()[static_cast<std::size_t>(state.range(0))];
  const auto mode = static_cast<dialed::instr::instrumentation>(state.range(1));
  const auto prog = dialed::apps::build_app(app, mode);
  dialed::proto::prover_device dev(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    dev.invoke(chal, app.representative_input);
    cycles = dev.last_op_cycles();
  }
  state.counters["op_cycles"] = static_cast<double>(cycles);
  state.SetLabel(app.name + "/" + to_string(mode));
}
BENCHMARK(BM_attested_invocation)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==========================================================\n");
  std::printf("DIALED reproduction — Fig. 6(b): runtime (cycles)\n");
  std::printf("==========================================================\n");
  const auto ms = measure_all();
  dialed::bench::print_series("Op runtime (MCU cycles)", "cy", ms,
                              &dialed::bench::measurement::op_cycles, nullptr,
                              nullptr);
  for (const auto& app : dialed::apps::evaluation_apps()) {
    double orig = 0, cfa = 0, dfa = 0;
    for (const auto& m : ms) {
      if (m.app != app.name) continue;
      if (m.mode == "Original") orig = static_cast<double>(m.op_cycles);
      if (m.mode == "Tiny-CFA") cfa = static_cast<double>(m.op_cycles);
      if (m.mode == "DIALED") dfa = static_cast<double>(m.op_cycles);
    }
    std::printf("%-18s DIALED over Tiny-CFA: +%.1f%% (paper: 1-20%%); "
                "Tiny-CFA over original: +%.0f%%\n",
                app.name.c_str(), 100.0 * (dfa - cfa) / cfa,
                100.0 * (cfa - orig) / orig);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
