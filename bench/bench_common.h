// Shared helpers for the benchmark harnesses reproducing the paper's
// evaluation (§V): build each evaluation app at each instrumentation level
// and measure ER size, op runtime (cycles) and OR log bytes.
#ifndef DIALED_BENCH_BENCH_COMMON_H
#define DIALED_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "proto/prover.h"

namespace dialed::bench {

inline byte_vec bench_key() { return byte_vec(32, 0x42); }

struct measurement {
  std::string app;
  std::string mode;
  std::size_t code_size = 0;   ///< ER bytes (Fig. 6a)
  std::uint64_t op_cycles = 0; ///< op runtime in MCU cycles (Fig. 6b)
  int log_bytes = 0;           ///< CF-Log + I-Log bytes in OR (Fig. 6c)
};

/// Build + run one app at one instrumentation level on its representative
/// workload, returning the paper's three Fig. 6 quantities.
inline measurement measure(const apps::app_spec& app,
                           instr::instrumentation mode,
                           const instr::pass_options& popts = {}) {
  const auto prog = apps::build_app(app, mode, popts);
  proto::prover_device dev(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  dev.invoke(chal, app.representative_input);
  measurement m;
  m.app = app.name;
  m.mode = to_string(mode);
  m.code_size = prog.code_size();
  m.op_cycles = dev.last_op_cycles();
  m.log_bytes = dev.last_log_bytes();
  return m;
}

/// All apps x all instrumentation levels.
inline std::vector<measurement> measure_all(
    const instr::pass_options& popts = {}) {
  std::vector<measurement> out;
  for (const auto& app : apps::evaluation_apps()) {
    for (const auto mode :
         {instr::instrumentation::none, instr::instrumentation::tinycfa,
          instr::instrumentation::dialed}) {
      out.push_back(measure(app, mode, popts));
    }
  }
  return out;
}

inline void print_series(const char* title, const char* unit,
                         const std::vector<measurement>& ms,
                         std::uint64_t measurement::*field_u64,
                         std::size_t measurement::*field_sz,
                         int measurement::*field_int) {
  std::printf("\n%s\n", title);
  std::printf("%-18s %14s %14s %14s\n", "Application", "Original",
              "Tiny-CFA", "DIALED");
  for (const auto& app : apps::evaluation_apps()) {
    double v[3] = {0, 0, 0};
    for (const auto& m : ms) {
      if (m.app != app.name) continue;
      int idx = m.mode == "Original" ? 0 : (m.mode == "Tiny-CFA" ? 1 : 2);
      if (field_u64 != nullptr) v[idx] = static_cast<double>(m.*field_u64);
      if (field_sz != nullptr) v[idx] = static_cast<double>(m.*field_sz);
      if (field_int != nullptr) v[idx] = static_cast<double>(m.*field_int);
    }
    std::printf("%-18s %11.0f %s %11.0f %s %11.0f %s\n", app.name.c_str(),
                v[0], unit, v[1], unit, v[2], unit);
  }
}

}  // namespace dialed::bench

#endif  // DIALED_BENCH_BENCH_COMMON_H
