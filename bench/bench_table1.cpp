// Table I reproduction: functionality and hardware overhead comparison of
// run-time attestation architectures (paper §V-A). Prints the published
// table with the structural-model validation columns, then times the cost
// estimator itself under google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hwcost/hwcost.h"

namespace {

void BM_structural_estimate(benchmark::State& state) {
  const auto rows = dialed::hwcost::table1_techniques();
  for (auto _ : state) {
    int total = 0;
    for (const auto& t : rows) {
      if (t.structure) {
        total += dialed::hwcost::estimate(*t.structure).luts;
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_structural_estimate);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==========================================================\n");
  std::printf("DIALED reproduction — Table I (paper §V-A)\n");
  std::printf("==========================================================\n");
  std::printf("%s\n", dialed::hwcost::render_table1().c_str());

  // Model-vs-published validation.
  std::printf("Structural-model validation (single shared parameter set):\n");
  for (const auto& t : dialed::hwcost::table1_techniques()) {
    if (!t.structure || !t.published_luts) continue;
    const auto m = dialed::hwcost::estimate(*t.structure);
    std::printf("  %-10s model %5d/%5d published %5d/%5d  (err %+.1f%% / %+.1f%%)\n",
                t.name.c_str(), m.luts, m.registers, *t.published_luts,
                *t.published_regs,
                100.0 * (m.luts - *t.published_luts) / *t.published_luts,
                100.0 * (m.registers - *t.published_regs) /
                    *t.published_regs);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
