// Fig. 6(c) reproduction: attestation-log size (bytes in OR) — Tiny-CFA
// (CF-Log only) vs DIALED (CF-Log + I-Log). The paper's observation: thanks
// to Definition 1 (only non-stack reads are inputs), DIALED's I-Log adds
// only a modest amount on top of the control-flow log.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "verifier/verifier.h"

namespace {

using dialed::bench::bench_key;
using dialed::bench::measure_all;

void BM_verify_report(benchmark::State& state) {
  // Vrf-side verification cost (MAC + abstract execution) per report.
  const auto app =
      dialed::apps::evaluation_apps()[static_cast<std::size_t>(state.range(0))];
  const auto prog =
      dialed::apps::build_app(app, dialed::instr::instrumentation::dialed);
  dialed::proto::prover_device dev(prog, bench_key());
  dialed::verifier::op_verifier vrf(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  const auto rep = dev.invoke(chal, app.representative_input);
  for (auto _ : state) {
    const auto v = vrf.verify(rep);
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel(app.name);
}
BENCHMARK(BM_verify_report)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==========================================================\n");
  std::printf("DIALED reproduction — Fig. 6(c): log size\n");
  std::printf("==========================================================\n");
  const auto ms = measure_all();
  std::printf("\nAttestation log size in OR (bytes)\n");
  std::printf("%-18s %14s %14s\n", "Application", "Tiny-CFA", "DIALED");
  for (const auto& app : dialed::apps::evaluation_apps()) {
    int cfa = 0, dfa = 0;
    for (const auto& m : ms) {
      if (m.app != app.name) continue;
      if (m.mode == "Tiny-CFA") cfa = m.log_bytes;
      if (m.mode == "DIALED") dfa = m.log_bytes;
    }
    std::printf("%-18s %12d B %12d B  (I-Log adds %d B)\n", app.name.c_str(),
                cfa, dfa, dfa - cfa);
  }
  std::printf("\nAll logs fit the 2 KiB OR without encroaching on the "
              "stack (paper §V-B).\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
