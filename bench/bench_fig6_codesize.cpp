// Fig. 6(a) reproduction: total code size (bytes) of each evaluation app —
// unmodified, Tiny-CFA-instrumented (CFA), and DIALED-instrumented
// (CFA+DFA). The paper's shape: overhead dominated by the CFA
// instrumentation; DIALED adds 1-20% on top of Tiny-CFA.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using dialed::bench::bench_key;
using dialed::bench::measure_all;

void BM_toolchain_build(benchmark::State& state) {
  // Throughput of the full compile+instrument+assemble pipeline.
  const auto app =
      dialed::apps::evaluation_apps()[static_cast<std::size_t>(state.range(0))];
  const auto mode = static_cast<dialed::instr::instrumentation>(state.range(1));
  std::size_t size = 0;
  for (auto _ : state) {
    const auto prog = dialed::apps::build_app(app, mode);
    size = prog.code_size();
    benchmark::DoNotOptimize(prog);
  }
  state.counters["code_bytes"] = static_cast<double>(size);
  state.SetLabel(app.name + "/" + to_string(mode));
}
BENCHMARK(BM_toolchain_build)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==========================================================\n");
  std::printf("DIALED reproduction — Fig. 6(a): code size\n");
  std::printf("==========================================================\n");
  const auto ms = measure_all();
  dialed::bench::print_series("Total code size (ER bytes)", "B", ms, nullptr,
                              &dialed::bench::measurement::code_size,
                              nullptr);
  // Shape checks reported inline.
  for (const auto& app : dialed::apps::evaluation_apps()) {
    double orig = 0, cfa = 0, dfa = 0;
    for (const auto& m : ms) {
      if (m.app != app.name) continue;
      if (m.mode == "Original") orig = static_cast<double>(m.code_size);
      if (m.mode == "Tiny-CFA") cfa = static_cast<double>(m.code_size);
      if (m.mode == "DIALED") dfa = static_cast<double>(m.code_size);
    }
    std::printf("%-18s DIALED over Tiny-CFA: +%.1f%% (paper: 1-20%%); "
                "Tiny-CFA over original: +%.0f%%\n",
                app.name.c_str(), 100.0 * (dfa - cfa) / cfa,
                100.0 * (cfa - orig) / orig);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
