// Ablation A1 (paper §III-A claim): DIALED's Definition 1 — only values
// read from outside the op's stack are inputs — is what keeps I-Log small.
// We compare the shipped configuration against `log_all_reads` (every
// memory read logged) and against `static_read_filter=false` (every read
// dynamically checked, the literal Fig. 5 scheme).
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using dialed::bench::bench_key;
using dialed::bench::measure;

void BM_run_logall(benchmark::State& state) {
  const auto app =
      dialed::apps::evaluation_apps()[static_cast<std::size_t>(state.range(0))];
  dialed::instr::pass_options popts;
  popts.log_all_reads = state.range(1) != 0;
  const auto prog = dialed::apps::build_app(
      app, dialed::instr::instrumentation::dialed, popts);
  dialed::proto::prover_device dev(prog, bench_key());
  std::array<std::uint8_t, 16> chal{};
  for (auto _ : state) {
    dev.invoke(chal, app.representative_input);
  }
  state.counters["log_bytes"] = dev.last_log_bytes();
  state.counters["op_cycles"] = static_cast<double>(dev.last_op_cycles());
  state.SetLabel(app.name +
                 (popts.log_all_reads ? "/log-all" : "/definition-1"));
}
BENCHMARK(BM_run_logall)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==========================================================\n");
  std::printf("DIALED reproduction — ablation A1: the input definition\n");
  std::printf("==========================================================\n");
  std::printf("\n%-18s %16s %16s %16s\n", "Application", "Definition-1",
              "log-all-reads", "dynamic-only");
  for (const auto& app : dialed::apps::evaluation_apps()) {
    const auto lean =
        measure(app, dialed::instr::instrumentation::dialed);
    dialed::instr::pass_options all;
    all.log_all_reads = true;
    const auto fat =
        measure(app, dialed::instr::instrumentation::dialed, all);
    dialed::instr::pass_options dyn;
    dyn.static_read_filter = false;
    const auto dynamic =
        measure(app, dialed::instr::instrumentation::dialed, dyn);
    std::printf("%-18s %12d B     %12d B    %12d B   (I-Log bytes)\n",
                app.name.c_str(), lean.log_bytes, fat.log_bytes,
                dynamic.log_bytes);
    std::printf("%-18s %12llu cy    %12llu cy   %12llu cy  (op cycles)\n", "",
                static_cast<unsigned long long>(lean.op_cycles),
                static_cast<unsigned long long>(fat.op_cycles),
                static_cast<unsigned long long>(dynamic.op_cycles));
  }
  std::printf(
      "\nDefinition 1 keeps I-Log small while retaining everything Vrf\n"
      "needs for abstract execution (paper §III-A); the static classifier\n"
      "is a pure optimization (same log bytes as dynamic-only).\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
